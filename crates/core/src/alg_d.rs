//! Algorithm D: LEC optimization with multiple uncertain parameters
//! (§3.6, Figure 1).
//!
//! Every DP node carries exactly the four distributions of Figure 1:
//! `Pr(M)` (global), `Pr(|B_j|)` (the node's composite input size),
//! `Pr(|A_j|)` (the joined table's size after selection) and `Pr(σ)` (the
//! connecting predicates' selectivity).  Expected join cost uses the
//! linear-time algorithms of §3.6.1/§3.6.2 where the formula is separable,
//! and the generic triple sum otherwise; the result-size distribution is
//! the independent product `|B_j|·|A_j|·σ` (§3.6: "the probability that the
//! join has size abσ"), kept small by the §3.6.3 rebucketing — either
//! rebucket-after-product, or the paper's ∛b-inputs scheme.

use crate::dp::{insert_entry, Rankable};
use crate::error::OptError;
use lec_cost::expected::{expected_join_cost, expected_sort_cost};
use lec_cost::{AccessPath, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode, TableSet};
use lec_prob::{Distribution, PrefixTables, Rebucket};
use std::collections::HashMap;

/// Configuration of Algorithm D.
#[derive(Debug, Clone)]
pub struct AlgDConfig {
    /// Maximum buckets kept for any node's size distribution (the paper's
    /// uniform `b`).
    pub max_buckets: usize,
    /// Rebucketing strategy.
    pub rebucket: Rebucket,
    /// When true, rebucket *inputs* of the size product to `∛b` buckets so
    /// the product itself lands near `b` (§3.6.3's scheme); when false,
    /// form the exact product and rebucket the result to `b`.
    pub cube_root_inputs: bool,
}

impl Default for AlgDConfig {
    fn default() -> Self {
        AlgDConfig {
            max_buckets: 16,
            rebucket: Rebucket::EqualDepth,
            cube_root_inputs: false,
        }
    }
}

/// Search statistics for Algorithm D.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AlgDStats {
    /// DAG nodes populated.
    pub nodes: usize,
    /// Join candidates generated.
    pub candidates: u64,
    /// Largest size-distribution support seen before rebucketing.
    pub max_product_support: usize,
}

/// Result of Algorithm D.
#[derive(Debug, Clone)]
pub struct AlgDResult {
    /// The winning plan.
    pub plan: PlanNode,
    /// Its expected cost over memory, sizes and selectivities.
    pub expected_cost: f64,
    /// Distribution of the final result size in pages.
    pub result_size: Distribution,
    /// Statistics.
    pub stats: AlgDStats,
}

#[derive(Debug, Clone)]
struct DEntry {
    plan: PlanNode,
    cost: f64,
    pages: Distribution,
    order: OrderProperty,
}

impl Rankable for DEntry {
    fn rank_cost(&self) -> f64 {
        self.cost
    }
    fn rank_order(&self) -> OrderProperty {
        self.order
    }
}

fn rebucket_to(d: &Distribution, n: usize, strategy: Rebucket) -> Distribution {
    d.rebucket(n.max(1), strategy)
        .expect("rebucket with n >= 1 cannot fail")
}

/// Run Algorithm D.
pub fn optimize_alg_d(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &AlgDConfig,
) -> Result<AlgDResult, OptError> {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    if config.max_buckets == 0 {
        return Err(OptError::BadParameter("Algorithm D requires max_buckets >= 1"));
    }
    let m_tables = PrefixTables::new(memory);
    let mut stats = AlgDStats::default();
    let mut table: HashMap<TableSet, Vec<DEntry>> = HashMap::new();

    // Depth 1: access paths with size distributions.
    for idx in 0..n {
        let mut entries: Vec<DEntry> = Vec::new();
        let pages = rebucket_to(
            &model.base_pages_dist(idx),
            config.max_buckets,
            config.rebucket,
        );
        for path in model.access_paths(idx) {
            let plan = match path {
                AccessPath::SeqScan => PlanNode::SeqScan { table: idx },
                AccessPath::IndexScan => PlanNode::IndexScan { table: idx },
            };
            let order = lec_cost::output_order(model, &plan);
            insert_entry(
                &mut entries,
                DEntry {
                    cost: model.access_cost(path, idx),
                    pages: pages.clone(),
                    order,
                    plan,
                },
            );
        }
        stats.nodes += 1;
        table.insert(TableSet::singleton(idx), entries);
    }

    // Depths 2..n.
    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut entries: Vec<DEntry> = Vec::new();
            for j in set.iter() {
                let sj = set.without(j);
                if !query.is_connected_to(sj, j) {
                    continue;
                }
                let Some(outer_entries) = table.get(&sj) else { continue };
                let inner_entries =
                    table.get(&TableSet::singleton(j)).expect("depth-1 exists");
                let sel_dist = model.join_selectivity_dist(sj, j);
                let mut new_entries: Vec<DEntry> = Vec::new();
                for outer in outer_entries {
                    for inner in inner_entries {
                        // Result size is method-independent; compute once.
                        let result_size = product_size(
                            &outer.pages,
                            &inner.pages,
                            &sel_dist,
                            config,
                            &mut stats,
                        );
                        for method in JoinMethod::ALL {
                            stats.candidates += 1;
                            let join_ec = expected_join_cost(
                                method,
                                &outer.pages,
                                &inner.pages,
                                memory,
                                &m_tables,
                            );
                            let cost = outer.cost + inner.cost + join_ec;
                            let order = crate::dp::join_output_order(
                                model,
                                sj,
                                outer.order,
                                j,
                                method,
                            );
                            insert_entry(
                                &mut new_entries,
                                DEntry {
                                    plan: PlanNode::join(
                                        method,
                                        outer.plan.clone(),
                                        inner.plan.clone(),
                                    ),
                                    cost,
                                    pages: result_size.clone(),
                                    order,
                                },
                            );
                        }
                    }
                }
                for e in new_entries {
                    insert_entry(&mut entries, e);
                }
            }
            if !entries.is_empty() {
                stats.nodes += 1;
                table.insert(set, entries);
            }
        }
    }

    // Root: enforce required order with an expected-cost sort.
    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let eq = model.equivalences();
    let mut best: Option<(PlanNode, f64, Distribution)> = None;
    for e in root {
        let (plan, cost) = match query.required_order {
            Some(want) if !eq.satisfies(e.order, want) => {
                let sc = expected_sort_cost(&e.pages, &m_tables);
                (PlanNode::sort(e.plan, want), e.cost + sc)
            }
            _ => (e.plan, e.cost),
        };
        if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
            best = Some((plan, cost, e.pages));
        }
    }
    let (plan, expected_cost, result_size) = best.ok_or(OptError::NoPlanFound)?;
    Ok(AlgDResult { plan, expected_cost, result_size, stats })
}

/// The §3.6.3 result-size distribution `|B_j| · |A_j| · σ`.
fn product_size(
    outer: &Distribution,
    inner: &Distribution,
    sel: &Distribution,
    config: &AlgDConfig,
    stats: &mut AlgDStats,
) -> Distribution {
    let b = config.max_buckets;
    let product = if config.cube_root_inputs {
        // Rebucket each factor to ∛b so the product has ≈ b buckets.
        let cube = ((b as f64).cbrt().ceil() as usize).max(1);
        rebucket_to(outer, cube, config.rebucket)
            .product(&rebucket_to(inner, cube, config.rebucket))
            .product(&rebucket_to(sel, cube, config.rebucket))
    } else {
        outer.product(inner).product(sel)
    };
    stats.max_product_support = stats.max_product_support.max(product.len());
    let clamped = product.map(|v| v.max(1.0));
    rebucket_to(&clamped, b, config.rebucket)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use lec_plan::ColumnRef;

    #[test]
    fn with_point_sizes_d_reduces_to_c() {
        // All selectivities and base sizes certain → D must agree with C.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 5).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        assert!(
            (c.cost - d.expected_cost).abs() / c.cost < 1e-9,
            "C {} vs D {}",
            c.cost,
            d.expected_cost
        );
        assert_eq!(c.plan, d.plan);
    }

    #[test]
    fn example_1_1_unchanged_by_d() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let d =
            optimize_alg_d(&model, &example_1_1_memory(), &AlgDConfig::default())
                .unwrap();
        assert!(crate::fixtures::is_plan2(&d.plan), "{}", d.plan.compact());
        assert!((d.expected_cost - 4_209_000.0).abs() < 1.0);
        // Result size is the certain 3000 pages.
        assert!(d.result_size.is_point());
        assert!((d.result_size.mean() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn uncertain_selectivity_shifts_the_expected_cost() {
        let (cat, mut q) = example_1_1();
        // Same mean selectivity, but with mass on a 10x larger value: the
        // expected sort cost of the hash plan rises.
        let base = 3000.0 / (1_000_000.0 * 400_000.0);
        q.joins[0].selectivity = Distribution::from_pairs([
            (base * 0.1, 0.5),
            (base * 1.9, 0.5),
        ])
        .unwrap();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        // Result size now has two buckets: 300 and 5700 pages.
        assert_eq!(d.result_size.len(), 2);
        assert!((d.result_size.mean() - 3000.0).abs() < 1e-6);
        // The plan choice is unchanged (sort cost is still small), but the
        // cost reflects the spread.
        assert!(crate::fixtures::is_plan2(&d.plan), "{}", d.plan.compact());
    }

    #[test]
    fn cube_root_mode_bounds_product_supports() {
        let (cat, mut q) = three_chain();
        for j in &mut q.joins {
            let s = j.selectivity.mean();
            j.selectivity =
                lec_prob::presets::selectivity_band(s / 4.0, (s * 4.0).min(1.0), 6)
                    .unwrap();
        }
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(300.0, 0.5, 6).unwrap();
        let full = AlgDConfig { cube_root_inputs: false, max_buckets: 8, ..Default::default() };
        let cube = AlgDConfig { cube_root_inputs: true, max_buckets: 8, ..Default::default() };
        let rf = optimize_alg_d(&model, &memory, &full).unwrap();
        let rc = optimize_alg_d(&model, &memory, &cube).unwrap();
        assert!(
            rc.stats.max_product_support <= 27,
            "∛8 = 2 per factor → ≤ 8 product buckets (constructor may merge), got {}",
            rc.stats.max_product_support
        );
        assert!(rf.stats.max_product_support >= rc.stats.max_product_support);
        // Both should agree on cost within a coarse tolerance (rebucketing
        // error), sanity-bounded to the same order of magnitude.
        let ratio = rf.expected_cost / rc.expected_cost;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uncertain_base_size_is_consumed() {
        // Rebuild the Example 1.1 catalog with B's size uncertain around
        // the same mean: the result-size distribution must spread out.
        let (cat, q) = example_1_1();
        let mut cat2 = lec_catalog::Catalog::new();
        cat2.add_table("A", cat.table(lec_catalog::TableId(0)).stats.clone());
        let mut b_stats = cat.table(lec_catalog::TableId(1)).stats.clone();
        b_stats.page_dist =
            Some(Distribution::bimodal(200_000.0, 600_000.0, 0.5).unwrap());
        cat2.add_table("B", b_stats);
        let model = CostModel::new(&cat2, &q);
        let d =
            optimize_alg_d(&model, &example_1_1_memory(), &AlgDConfig::default())
                .unwrap();
        assert!(d.expected_cost > 0.0);
        assert!(!d.result_size.is_point());
    }

    #[test]
    fn zero_buckets_rejected() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let config = AlgDConfig { max_buckets: 0, ..Default::default() };
        assert!(matches!(
            optimize_alg_d(&model, &example_1_1_memory(), &config),
            Err(OptError::BadParameter(_))
        ));
    }

    #[test]
    fn d_handles_required_order_with_uncertain_result_size() {
        let (cat, mut q) = three_chain();
        q.required_order = Some(ColumnRef::new(0, 0));
        for j in &mut q.joins {
            let s = j.selectivity.mean();
            j.selectivity =
                lec_prob::presets::selectivity_band(s / 3.0, (s * 3.0).min(1.0), 4)
                    .unwrap();
        }
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(250.0, 0.4, 4).unwrap();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        // The winning plan must end sorted (either via SM order or a Sort).
        let eq = model.equivalences();
        let order = lec_cost::output_order(&model, &d.plan);
        assert!(eq.satisfies(order, q.required_order.unwrap()));
    }
}
