//! Algorithm D: LEC optimization with multiple uncertain parameters
//! (§3.6, Figure 1).
//!
//! Policy over the engine: [`MultiParamPolicy`] — the Figure 1 per-node
//! distribution bookkeeping and §3.6.3 rebucketing live there; this module
//! is the thin entry point.

use crate::error::OptError;
pub use crate::search::AlgDConfig;
use crate::search::{
    run_search_with, MultiParamPolicy, PlanShape, SearchConfig, SearchExtras, SearchOutcome,
};
use lec_cost::CostModel;
use lec_prob::Distribution;

/// Run Algorithm D.  The outcome's extras carry the winning plan's
/// result-size distribution and the largest pre-rebucketing product
/// support.
pub fn optimize_alg_d(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &AlgDConfig,
) -> Result<SearchOutcome, OptError> {
    optimize_alg_d_with(model, memory, config, &SearchConfig::default())
}

/// [`optimize_alg_d`] under an explicit [`SearchConfig`]: DP levels fan
/// out across `search.threads`, and block nested-loop's `b_A·b_B·b_M`
/// per-candidate triple sum fans out once it crosses the bucket
/// threshold.
pub fn optimize_alg_d_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &AlgDConfig,
    search: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    if config.max_buckets == 0 {
        return Err(OptError::BadParameter(
            "Algorithm D requires max_buckets >= 1",
        ));
    }
    let mut policy = MultiParamPolicy::new(memory, config.clone())
        .with_parallelism(search.bucket_parallelism_for(model.query()));
    let run = run_search_with(model, PlanShape::LeftDeep, &mut policy, search)?;
    let (best, stats) = run.into_best();
    Ok(SearchOutcome {
        plan: best.plan,
        cost: best.cost,
        stats,
        extras: SearchExtras::MultiParam {
            result_size: best.pages,
            max_product_support: policy.max_product_support,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use lec_plan::ColumnRef;

    #[test]
    fn with_point_sizes_d_reduces_to_c() {
        // All selectivities and base sizes certain → D must agree with C.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 5).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        assert!(
            (c.cost - d.cost).abs() / c.cost < 1e-9,
            "C {} vs D {}",
            c.cost,
            d.cost
        );
        assert_eq!(c.plan, d.plan);
    }

    #[test]
    fn example_1_1_unchanged_by_d() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let d = optimize_alg_d(&model, &example_1_1_memory(), &AlgDConfig::default()).unwrap();
        assert!(crate::fixtures::is_plan2(&d.plan), "{}", d.plan.compact());
        assert!((d.cost - 4_209_000.0).abs() < 1.0);
        // Result size is the certain 3000 pages.
        let size = d.result_size().unwrap();
        assert!(size.is_point());
        assert!((size.mean() - 3000.0).abs() < 1e-6);
        // The uniform counters are all populated (the seed hard-coded
        // evals to 0 for Algorithm D).
        assert!(d.stats.nodes > 0);
        assert!(d.stats.candidates > 0);
        assert!(
            d.stats.evals > 0,
            "D must report its §3.6 formula evaluations"
        );
    }

    #[test]
    fn uncertain_selectivity_shifts_the_expected_cost() {
        let (cat, mut q) = example_1_1();
        // Same mean selectivity, but with mass on a 10x larger value: the
        // expected sort cost of the hash plan rises.
        let base = 3000.0 / (1_000_000.0 * 400_000.0);
        q.joins[0].selectivity =
            Distribution::from_pairs([(base * 0.1, 0.5), (base * 1.9, 0.5)]).unwrap();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        // Result size now has two buckets: 300 and 5700 pages.
        assert_eq!(d.result_size().unwrap().len(), 2);
        assert!((d.result_size().unwrap().mean() - 3000.0).abs() < 1e-6);
        // The plan choice is unchanged (sort cost is still small), but the
        // cost reflects the spread.
        assert!(crate::fixtures::is_plan2(&d.plan), "{}", d.plan.compact());
    }

    #[test]
    fn cube_root_mode_bounds_product_supports() {
        let (cat, mut q) = three_chain();
        for j in &mut q.joins {
            let s = j.selectivity.mean();
            j.selectivity =
                lec_prob::presets::selectivity_band(s / 4.0, (s * 4.0).min(1.0), 6).unwrap();
        }
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(300.0, 0.5, 6).unwrap();
        let full = AlgDConfig {
            cube_root_inputs: false,
            max_buckets: 8,
            ..Default::default()
        };
        let cube = AlgDConfig {
            cube_root_inputs: true,
            max_buckets: 8,
            ..Default::default()
        };
        let rf = optimize_alg_d(&model, &memory, &full).unwrap();
        let rc = optimize_alg_d(&model, &memory, &cube).unwrap();
        assert!(
            rc.max_product_support().unwrap() <= 27,
            "∛8 = 2 per factor → ≤ 8 product buckets (constructor may merge), got {}",
            rc.max_product_support().unwrap()
        );
        assert!(rf.max_product_support().unwrap() >= rc.max_product_support().unwrap());
        // Both should agree on cost within a coarse tolerance (rebucketing
        // error), sanity-bounded to the same order of magnitude.
        let ratio = rf.cost / rc.cost;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uncertain_base_size_is_consumed() {
        // Rebuild the Example 1.1 catalog with B's size uncertain around
        // the same mean: the result-size distribution must spread out.
        let (cat, q) = example_1_1();
        let mut cat2 = lec_catalog::Catalog::new();
        cat2.add_table("A", cat.table(lec_catalog::TableId(0)).stats.clone());
        let mut b_stats = cat.table(lec_catalog::TableId(1)).stats.clone();
        b_stats.page_dist = Some(Distribution::bimodal(200_000.0, 600_000.0, 0.5).unwrap());
        cat2.add_table("B", b_stats);
        let model = CostModel::new(&cat2, &q);
        let d = optimize_alg_d(&model, &example_1_1_memory(), &AlgDConfig::default()).unwrap();
        assert!(d.cost > 0.0);
        assert!(!d.result_size().unwrap().is_point());
    }

    #[test]
    fn zero_buckets_rejected() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let config = AlgDConfig {
            max_buckets: 0,
            ..Default::default()
        };
        assert!(matches!(
            optimize_alg_d(&model, &example_1_1_memory(), &config),
            Err(OptError::BadParameter(_))
        ));
    }

    #[test]
    fn d_handles_required_order_with_uncertain_result_size() {
        let (cat, mut q) = three_chain();
        q.required_order = Some(ColumnRef::new(0, 0));
        for j in &mut q.joins {
            let s = j.selectivity.mean();
            j.selectivity =
                lec_prob::presets::selectivity_band(s / 3.0, (s * 3.0).min(1.0), 4).unwrap();
        }
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(250.0, 0.4, 4).unwrap();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        // The winning plan must end sorted (either via SM order or a Sort).
        let eq = model.equivalences();
        let order = lec_cost::output_order(&model, &d.plan);
        assert!(eq.satisfies(order, q.required_order.unwrap()));
    }
}
