//! Algorithm B: generating more candidates with top-c lists (§3.3).
//!
//! Policy over the engine: one [`TopCPolicy`] run per memory
//! representative (the Proposition 3.1 frontier lives in the policy),
//! then EC ranking of the union of root candidates.

use crate::error::OptError;
use crate::search::{
    run_search_with, PlanShape, SearchConfig, SearchExtras, SearchOutcome, SearchStats, TopCPolicy,
};
use lec_cost::{expected_plan_cost_static, CostModel};
use lec_plan::PlanNode;
use lec_prob::Distribution;

/// Run Algorithm B: top-c candidates per memory representative, then pick
/// the candidate of least expected cost.  The outcome's extras carry the
/// Proposition 3.1 [`crate::search::FrontierStats`] and the number of
/// distinct candidates ranked.
pub fn optimize_alg_b(
    model: &CostModel<'_>,
    memory: &Distribution,
    c: usize,
) -> Result<SearchOutcome, OptError> {
    optimize_alg_b_with(model, memory, c, &SearchConfig::default())
}

/// [`optimize_alg_b`] under an explicit [`SearchConfig`]: each
/// per-representative top-`c` search fans its DP levels out across
/// `config.threads`.
pub fn optimize_alg_b_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    c: usize,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    if c == 0 {
        return Err(OptError::BadParameter("Algorithm B requires c >= 1"));
    }
    let mut reps: Vec<f64> = memory.support().to_vec();
    let mean = memory.mean();
    if !reps.iter().any(|&m| (m - mean).abs() < 1e-9) {
        reps.push(mean);
    }

    let mut frontier = crate::search::FrontierStats::default();
    let mut stats = SearchStats::default();
    let mut candidates: Vec<PlanNode> = Vec::new();
    for m in reps {
        let mut policy = TopCPolicy::new(m, c);
        let run = run_search_with(model, PlanShape::LeftDeep, &mut policy, config)?;
        stats.absorb(&run.stats);
        frontier.combinations_examined += policy.frontier.combinations_examined;
        frontier.bound_total += policy.frontier.bound_total;
        frontier.groups += policy.frontier.groups;
        for e in run.roots {
            if !candidates.contains(&e.plan) {
                candidates.push(e.plan);
            }
        }
    }

    // EC-rank the union of candidates, counting the replay evaluations.
    model.reset_evals();
    let mut best: Option<(PlanNode, f64)> = None;
    for plan in &candidates {
        let ec = expected_plan_cost_static(model, plan, memory);
        if best.as_ref().is_none_or(|(_, b)| ec < *b) {
            best = Some((plan.clone(), ec));
        }
    }
    stats.evals += model.evals();
    let (plan, expected_cost) = best.ok_or(OptError::NoPlanFound)?;
    Ok(SearchOutcome {
        plan,
        cost: expected_cost,
        stats,
        extras: SearchExtras::Frontier {
            frontier,
            n_candidates: candidates.len(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_a::optimize_alg_a;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};

    #[test]
    fn b_with_c1_matches_a() {
        // With c = 1, Algorithm B's candidate set per memory value is the
        // single LSC plan — i.e. Algorithm A.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let a = optimize_alg_a(&model, &memory).unwrap();
        let b = optimize_alg_b(&model, &memory, 1).unwrap();
        assert!((a.cost - b.cost).abs() < 1e-9);
    }

    #[test]
    fn b_improves_monotonically_with_c() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(300.0, 0.8, 5).unwrap();
        let mut last = f64::INFINITY;
        for c in [1, 2, 4, 8] {
            let b = optimize_alg_b(&model, &memory, c).unwrap();
            assert!(
                b.cost <= last + 1e-9,
                "candidate superset cannot hurt (c={c})"
            );
            last = b.cost;
        }
    }

    #[test]
    fn b_is_bounded_by_a_and_c() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.3, 0.6, 0.9] {
            let memory = lec_prob::presets::spread_family(350.0, spread, 6).unwrap();
            let a = optimize_alg_a(&model, &memory).unwrap();
            let b = optimize_alg_b(&model, &memory, 3).unwrap();
            let c = optimize_lec_static(&model, &memory).unwrap();
            assert!(b.cost <= a.cost + 1e-9);
            assert!(c.cost <= b.cost + 1e-9);
        }
    }

    #[test]
    fn frontier_respects_prop_3_1_bound() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        for c in [1, 2, 3, 5, 8, 13] {
            let b = optimize_alg_b(&model, &memory, c).unwrap();
            // Per group, examined ≤ c + c·log c (the bound_total is the
            // per-group bound times the number of groups).
            let f = b.frontier().unwrap();
            assert!(
                f.combinations_examined <= f.bound_total,
                "c={c}: {} > {}",
                f.combinations_examined,
                f.bound_total
            );
            assert!(f.groups > 0);
        }
    }

    #[test]
    fn example_1_1_found_by_b() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let b = optimize_alg_b(&model, &memory, 2).unwrap();
        assert!(crate::fixtures::is_plan2(&b.plan), "{}", b.plan.compact());
        assert!((b.cost - 4_209_000.0).abs() < 1.0);
    }

    #[test]
    fn c_zero_is_rejected() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            optimize_alg_b(&model, &example_1_1_memory(), 0),
            Err(OptError::BadParameter(_))
        ));
    }
}
