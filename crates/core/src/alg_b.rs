//! Algorithm B: generating more candidates with top-c lists (§3.3).
//!
//! "Suppose that rather than generating the best plan for each memory size
//! m_i, we generate the top c plans ... combining them using each possible
//! join method gives us the top c plans for computing the join over S if
//! we join A_j last."  Proposition 3.1 bounds the combinations that must be
//! examined per join method by `c + c·log c`: if the two input lists are
//! sorted by cost, combination `(s_i, a_k)` can only be in the top `c` when
//! `i·k ≤ c`, because `i·k − 1` combinations are at least as cheap.
//!
//! The frontier argument is exact here because all top-c variants of an
//! input share the same physical properties (sizes), so the join-method
//! cost term is constant within a group and ranking reduces to the sum of
//! input costs — precisely the paper's observation.

use crate::dp::{access_entries, join_output_order, DpStats, PointCoster, PhaseCoster};
use crate::error::OptError;
use lec_cost::{expected_plan_cost_static, CostModel};
use lec_plan::{JoinMethod, OrderProperty, PlanNode, TableSet};
use lec_prob::Distribution;
use std::collections::{BTreeMap, HashMap};

/// One plan kept in a top-c list.
#[derive(Debug, Clone)]
struct TopEntry {
    plan: PlanNode,
    cost: f64,
    pages: f64,
}

/// Counters proving Proposition 3.1 empirically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrontierStats {
    /// Combinations actually examined across all (node, j, method) groups.
    pub combinations_examined: u64,
    /// Sum of the paper's `c + c·log c` bound over the same groups.
    pub bound_total: u64,
    /// Number of combination groups.
    pub groups: u64,
}

/// Result of Algorithm B.
#[derive(Debug, Clone)]
pub struct AlgBResult {
    /// The winning plan (least expected cost among all candidates).
    pub plan: PlanNode,
    /// Its expected cost.
    pub expected_cost: f64,
    /// Number of distinct candidate plans that were EC-ranked.
    pub n_candidates: usize,
    /// Frontier counters (Prop 3.1).
    pub frontier: FrontierStats,
    /// Combined DP statistics over the b optimizer invocations.
    pub stats: DpStats,
}

/// Top-c System R DP at one fixed memory value; returns the root
/// candidates (order enforced) sorted by point cost.
fn top_c_dp(
    model: &CostModel<'_>,
    memory: f64,
    c: usize,
    frontier: &mut FrontierStats,
) -> Result<(Vec<TopEntry>, DpStats), OptError> {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    model.reset_evals();
    let coster = PointCoster { memory };
    let mut stats = DpStats::default();
    // Per subset: per order property, a ≤ c list sorted by cost.  The
    // inner map is a BTreeMap so iteration order (and thus tie-breaking
    // among equal-cost candidates) is deterministic across runs.
    let mut table: HashMap<TableSet, BTreeMap<OrderProperty, Vec<TopEntry>>> =
        HashMap::new();

    let push = |list: &mut Vec<TopEntry>, e: TopEntry, c: usize| {
        let at = list
            .binary_search_by(|x| x.cost.total_cmp(&e.cost))
            .unwrap_or_else(|i| i);
        list.insert(at, e);
        list.truncate(c);
    };

    for idx in 0..n {
        let mut per_order: BTreeMap<OrderProperty, Vec<TopEntry>> = BTreeMap::new();
        for e in access_entries(model, idx) {
            push(
                per_order.entry(e.order).or_default(),
                TopEntry { plan: e.plan, cost: e.cost, pages: e.pages },
                c,
            );
        }
        stats.nodes += 1;
        table.insert(TableSet::singleton(idx), per_order);
    }

    let bound = (c as f64 + c as f64 * (c as f64).ln()).ceil() as u64;

    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut per_order: BTreeMap<OrderProperty, Vec<TopEntry>> = BTreeMap::new();
            for j in set.iter() {
                let sj = set.without(j);
                if !query.is_connected_to(sj, j) {
                    continue;
                }
                let Some(outer_groups) = table.get(&sj) else { continue };
                let inner_groups = table
                    .get(&TableSet::singleton(j))
                    .expect("depth-1 entries exist");
                let sel = model.join_selectivity(sj, j);
                let phase = k - 2;
                // Flatten inner entries (access paths) into one sorted list;
                // their orders are folded into the join's output order rule,
                // which for inner sides never depends on the inner order.
                let mut inner_list: Vec<&TopEntry> =
                    inner_groups.values().flatten().collect();
                inner_list.sort_by(|a, b| a.cost.total_cmp(&b.cost));

                for (outer_order, outer_list) in outer_groups {
                    for method in JoinMethod::ALL {
                        frontier.groups += 1;
                        frontier.bound_total += bound;
                        // Cost term constant within the group: evaluate once.
                        let outer_pages = outer_list
                            .first()
                            .map(|e| e.pages)
                            .unwrap_or(0.0);
                        let inner_pages = inner_list
                            .first()
                            .map(|e| e.pages)
                            .unwrap_or(0.0);
                        let join_cost = coster.join_cost(
                            model,
                            phase,
                            method,
                            outer_pages,
                            inner_pages,
                        );
                        let order =
                            join_output_order(model, sj, *outer_order, j, method);
                        let pages =
                            model.join_output_pages(outer_pages, inner_pages, sel);
                        // Prop 3.1 frontier: only (i, k) with i·k ≤ c.
                        for (ki, inner) in inner_list.iter().enumerate() {
                            let i_max = c / (ki + 1);
                            if i_max == 0 {
                                break;
                            }
                            for outer in outer_list.iter().take(i_max) {
                                frontier.combinations_examined += 1;
                                stats.candidates += 1;
                                let cost = outer.cost + inner.cost + join_cost;
                                push(
                                    per_order.entry(order).or_default(),
                                    TopEntry {
                                        plan: PlanNode::join(
                                            method,
                                            outer.plan.clone(),
                                            inner.plan.clone(),
                                        ),
                                        cost,
                                        pages,
                                    },
                                    c,
                                );
                            }
                        }
                    }
                }
            }
            if !per_order.is_empty() {
                stats.nodes += 1;
                table.insert(set, per_order);
            }
        }
    }

    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let eq = model.equivalences();
    let sort_phase = n - 1;
    let mut out: Vec<TopEntry> = Vec::new();
    for (order, list) in root {
        for e in list {
            let (plan, cost) = match query.required_order {
                Some(want) if !eq.satisfies(order, want) => {
                    let sc = coster.sort_cost(model, sort_phase, e.pages);
                    (PlanNode::sort(e.plan, want), e.cost + sc)
                }
                _ => (e.plan, e.cost),
            };
            out.push(TopEntry { plan, cost, pages: e.pages });
        }
    }
    out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    out.truncate(c);
    stats.evals = model.evals();
    Ok((out, stats))
}

/// Run Algorithm B: top-c candidates per memory representative, then pick
/// the candidate of least expected cost.
pub fn optimize_alg_b(
    model: &CostModel<'_>,
    memory: &Distribution,
    c: usize,
) -> Result<AlgBResult, OptError> {
    if c == 0 {
        return Err(OptError::BadParameter("Algorithm B requires c >= 1"));
    }
    let mut reps: Vec<f64> = memory.support().to_vec();
    let mean = memory.mean();
    if !reps.iter().any(|&m| (m - mean).abs() < 1e-9) {
        reps.push(mean);
    }

    let mut frontier = FrontierStats::default();
    let mut stats = DpStats::default();
    let mut candidates: Vec<PlanNode> = Vec::new();
    for m in reps {
        let (top, s) = top_c_dp(model, m, c, &mut frontier)?;
        stats.nodes += s.nodes;
        stats.candidates += s.candidates;
        stats.evals += s.evals;
        for e in top {
            if !candidates.contains(&e.plan) {
                candidates.push(e.plan);
            }
        }
    }

    let mut best: Option<(PlanNode, f64)> = None;
    for plan in &candidates {
        let ec = expected_plan_cost_static(model, plan, memory);
        if best.as_ref().is_none_or(|(_, b)| ec < *b) {
            best = Some((plan.clone(), ec));
        }
    }
    let (plan, expected_cost) = best.ok_or(OptError::NoPlanFound)?;
    Ok(AlgBResult {
        plan,
        expected_cost,
        n_candidates: candidates.len(),
        frontier,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_a::optimize_alg_a;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};

    #[test]
    fn b_with_c1_matches_a() {
        // With c = 1, Algorithm B's candidate set per memory value is the
        // single LSC plan — i.e. Algorithm A.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let a = optimize_alg_a(&model, &memory).unwrap();
        let b = optimize_alg_b(&model, &memory, 1).unwrap();
        assert!((a.expected_cost - b.expected_cost).abs() < 1e-9);
    }

    #[test]
    fn b_improves_monotonically_with_c() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = lec_prob::presets::spread_family(300.0, 0.8, 5).unwrap();
        let mut last = f64::INFINITY;
        for c in [1, 2, 4, 8] {
            let b = optimize_alg_b(&model, &memory, c).unwrap();
            assert!(
                b.expected_cost <= last + 1e-9,
                "candidate superset cannot hurt (c={c})"
            );
            last = b.expected_cost;
        }
    }

    #[test]
    fn b_is_bounded_by_a_and_c() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.3, 0.6, 0.9] {
            let memory =
                lec_prob::presets::spread_family(350.0, spread, 6).unwrap();
            let a = optimize_alg_a(&model, &memory).unwrap();
            let b = optimize_alg_b(&model, &memory, 3).unwrap();
            let c = optimize_lec_static(&model, &memory).unwrap();
            assert!(b.expected_cost <= a.expected_cost + 1e-9);
            assert!(c.cost <= b.expected_cost + 1e-9);
        }
    }

    #[test]
    fn frontier_respects_prop_3_1_bound() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        for c in [1, 2, 3, 5, 8, 13] {
            let b = optimize_alg_b(&model, &memory, c).unwrap();
            // Per group, examined ≤ c + c·log c (the bound_total is the
            // per-group bound times the number of groups).
            assert!(
                b.frontier.combinations_examined <= b.frontier.bound_total,
                "c={c}: {} > {}",
                b.frontier.combinations_examined,
                b.frontier.bound_total
            );
            assert!(b.frontier.groups > 0);
        }
    }

    #[test]
    fn example_1_1_found_by_b() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let b = optimize_alg_b(&model, &memory, 2).unwrap();
        assert!(crate::fixtures::is_plan2(&b.plan), "{}", b.plan.compact());
        assert!((b.expected_cost - 4_209_000.0).abs() < 1.0);
    }

    #[test]
    fn c_zero_is_rejected() {
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        assert!(matches!(
            optimize_alg_b(&model, &example_1_1_memory(), 0),
            Err(OptError::BadParameter(_))
        ));
    }
}
