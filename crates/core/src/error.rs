//! Optimizer error type.

use lec_plan::query::QueryError;
use lec_prob::ProbError;
use std::fmt;

/// Errors raised by the optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The query has no tables.
    EmptyQuery,
    /// The query failed structural validation.
    InvalidQuery(QueryError),
    /// A probability operation failed (e.g. Markov support mismatch).
    Prob(ProbError),
    /// The search space was empty (disconnected subsets everywhere).
    NoPlanFound,
    /// A parameter was out of range (e.g. Algorithm B with c = 0).
    BadParameter(&'static str),
    /// A thread of the parallel search engine panicked while combining
    /// candidates (e.g. a coster bug); the search was aborted cleanly
    /// instead of deadlocking the level barrier or unwinding the caller.
    WorkerPanicked,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::EmptyQuery => write!(f, "query has no tables"),
            OptError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            OptError::Prob(e) => write!(f, "probability error: {e}"),
            OptError::NoPlanFound => write!(f, "no plan found"),
            OptError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            OptError::WorkerPanicked => write!(f, "a parallel search worker panicked"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::InvalidQuery(e) => Some(e),
            OptError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for OptError {
    fn from(e: QueryError) -> Self {
        OptError::InvalidQuery(e)
    }
}

impl From<ProbError> for OptError {
    fn from(e: ProbError) -> Self {
        OptError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OptError = QueryError::NoTables.into();
        assert!(e.to_string().contains("invalid query"));
        let e: OptError = ProbError::EmptySupport.into();
        assert!(e.to_string().contains("probability"));
        assert!(OptError::NoPlanFound.to_string().contains("no plan"));
        use std::error::Error;
        assert!(OptError::InvalidQuery(QueryError::NoTables)
            .source()
            .is_some());
        assert!(OptError::NoPlanFound.source().is_none());
    }
}
