//! The public optimizer facade: one entry point over all modes.
//!
//! Every mode returns the engine's uniform [`SearchOutcome`], so this
//! facade does no per-mode destructuring — it stamps the mode name and
//! the total wall-clock time and hands the outcome through.

use crate::alg_a::optimize_alg_a_with;
use crate::alg_b::optimize_alg_b_with;
use crate::alg_c::{optimize_lec_dynamic_with, optimize_lec_static_with};
use crate::alg_d::{optimize_alg_d_with, AlgDConfig};
use crate::error::OptError;
use crate::lsc::{optimize_lsc_from_dist_with, PointEstimate};
pub use crate::search::{SearchConfig, SearchExtras, SearchOutcome, SearchStats};
use lec_catalog::Catalog;
use lec_cost::CostModel;
use lec_plan::{PlanNode, Query};
use lec_prob::{Distribution, MarkovChain};
use std::time::Instant;

/// Which optimization algorithm to run.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Classical System R at the mean or mode of the memory distribution
    /// (the paper's "current optimizers").
    Lsc(PointEstimate),
    /// Classical System R at an explicit memory value.
    LscAt(f64),
    /// Algorithm A (§3.2): black-box LSC per bucket, EC-ranked.
    AlgorithmA,
    /// Algorithm B (§3.3): top-`c` candidates per bucket, EC-ranked.
    AlgorithmB {
        /// Candidate list length per DP node.
        c: usize,
    },
    /// Algorithm C (§3.4): exact LEC DP under static memory.
    AlgorithmC,
    /// Algorithm C under §3.5 per-phase Markov memory evolution.
    AlgorithmCDynamic {
        /// The memory transition model.
        chain: MarkovChain,
    },
    /// Algorithm D (§3.6): multi-parameter LEC DP.
    AlgorithmD {
        /// Bucketing configuration.
        config: AlgDConfig,
    },
    /// Bushy-plan LEC DP (the §4 extension; static memory only).
    Bushy,
    /// Randomized iterative improvement \[Swa89\] with the EC objective.
    IterativeImprovement {
        /// Search tuning.
        config: crate::randomized::RandomizedConfig,
        /// RNG seed (searches are deterministic per seed).
        seed: u64,
    },
    /// Simulated annealing \[IK90\] with the EC objective.
    SimulatedAnnealing {
        /// Search tuning.
        config: crate::randomized::RandomizedConfig,
        /// RNG seed.
        seed: u64,
    },
}

impl Mode {
    /// Stable fingerprint of the mode *and every parameter that shapes its
    /// outcome* (point estimates, candidate widths, Markov transition
    /// matrices, bucketing configs, RNG seeds) — one ingredient of the
    /// cross-query plan-cache key.  Two requests whose modes fingerprint
    /// equal are answered by the same algorithm with the same tuning.
    pub fn fingerprint(&self) -> u64 {
        use lec_cost::Fingerprint;
        let fp = Fingerprint::new();
        match self {
            Mode::Lsc(PointEstimate::Mean) => fp.u64(0),
            Mode::Lsc(PointEstimate::Mode) => fp.u64(1),
            Mode::LscAt(m) => fp.u64(2).f64(*m),
            Mode::AlgorithmA => fp.u64(3),
            Mode::AlgorithmB { c } => fp.u64(4).u64(*c as u64),
            Mode::AlgorithmC => fp.u64(5),
            Mode::AlgorithmCDynamic { chain } => {
                let mut fp = fp.u64(6).u64(chain.n_states() as u64);
                for (i, &s) in chain.states().iter().enumerate() {
                    fp = fp.f64(s);
                    for &p in chain.row(i) {
                        fp = fp.f64(p);
                    }
                }
                fp
            }
            Mode::AlgorithmD { config } => fp
                .u64(7)
                .u64(config.max_buckets as u64)
                .u64(match config.rebucket {
                    lec_prob::Rebucket::EqualWidth => 0,
                    lec_prob::Rebucket::EqualDepth => 1,
                })
                .u64(config.cube_root_inputs as u64),
            Mode::Bushy => fp.u64(8),
            Mode::IterativeImprovement { config, seed } => {
                randomized_fingerprint(fp.u64(9), config).u64(*seed)
            }
            Mode::SimulatedAnnealing { config, seed } => {
                randomized_fingerprint(fp.u64(10), config).u64(*seed)
            }
        }
        .finish()
    }

    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Lsc(PointEstimate::Mean) => "LSC(mean)",
            Mode::Lsc(PointEstimate::Mode) => "LSC(mode)",
            Mode::LscAt(_) => "LSC(at)",
            Mode::AlgorithmA => "AlgA",
            Mode::AlgorithmB { .. } => "AlgB",
            Mode::AlgorithmC => "AlgC",
            Mode::AlgorithmCDynamic { .. } => "AlgC-dyn",
            Mode::AlgorithmD { .. } => "AlgD",
            Mode::Bushy => "Bushy",
            Mode::IterativeImprovement { .. } => "II",
            Mode::SimulatedAnnealing { .. } => "SA",
        }
    }
}

fn randomized_fingerprint(
    fp: lec_cost::Fingerprint,
    config: &crate::randomized::RandomizedConfig,
) -> lec_cost::Fingerprint {
    fp.u64(config.restarts as u64)
        .u64(config.patience as u64)
        .f64(config.initial_temp_frac)
        .f64(config.cooling)
        .u64(config.sa_steps as u64)
}

/// The outcome of one optimization call: the engine's uniform result plus
/// the mode's display name.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// Chosen plan.
    pub plan: PlanNode,
    /// The objective value the algorithm reported: point cost for LSC,
    /// expected cost for every LEC mode.
    pub cost: f64,
    /// Mode display name.
    pub mode: &'static str,
    /// Uniform statistics (elapsed covers the whole facade call).
    pub stats: SearchStats,
    /// Mode-specific diagnostics.
    pub extras: SearchExtras,
}

/// An optimizer bound to a catalog and a memory model.
#[derive(Debug)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    memory: Distribution,
    search: SearchConfig,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer believing `memory` describes the run-time
    /// environment.  Searches use the default [`SearchConfig`]: DP levels
    /// fan out across the machine's available parallelism once a query is
    /// large enough to benefit.
    pub fn new(catalog: &'a Catalog, memory: Distribution) -> Self {
        Optimizer {
            catalog,
            memory,
            search: SearchConfig::default(),
        }
    }

    /// Override the parallel-search configuration (thread count, fan-out
    /// thresholds) for every subsequent [`Optimizer::optimize`] call.
    /// The randomized modes (II/SA) are move-based rather than DP-based
    /// and ignore it.
    pub fn with_search_config(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Borrow worker threads from a shared [`crate::search::WorkerPool`]
    /// for every subsequent search instead of spawning a scoped pool per
    /// search; a [`crate::search::PersistentPool`] turns the ~50µs spawn
    /// cost into a few-µs wake, which is what lets sub-100µs queries fan
    /// out at all.  Results stay byte-identical either way.
    pub fn with_worker_pool(mut self, pool: std::sync::Arc<dyn crate::search::WorkerPool>) -> Self {
        self.search = self.search.with_pool(pool);
        self
    }

    /// Consult (and populate) a shared cross-search [`SubplanMemo`] in
    /// every subsequent DP search: nodes whose canonical connected-subquery
    /// shape was combined before — in any search sharing the memo — are
    /// served by relabeling instead of re-running their combine/cost loop.
    /// Results stay byte-identical with or without the memo; only
    /// [`SearchStats::memo_hits`]/[`SearchStats::memo_misses`] tell them
    /// apart.  Top-c (Algorithm B), keep-all and the randomized modes
    /// bypass it, mirroring the serving cache's uncacheable rules.
    ///
    /// [`SubplanMemo`]: crate::search::SubplanMemo
    /// [`SearchStats::memo_hits`]: crate::SearchStats
    /// [`SearchStats::memo_misses`]: crate::SearchStats
    pub fn with_subplan_memo(mut self, memo: std::sync::Arc<crate::search::SubplanMemo>) -> Self {
        self.search = self.search.with_memo(memo);
        self
    }

    /// Branch-and-bound pruning for every subsequent DP search (see
    /// [`SearchConfig::pruning`]): subsets whose admissible lower bound
    /// strictly exceeds the incumbent complete-plan cost are discarded
    /// before their combine/cost loop.  Answers stay byte-identical;
    /// modes whose policy cannot supply an admissible bound (top-c, the
    /// randomized modes) simply ignore the flag.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.search = self.search.with_pruning(pruning);
        self
    }

    /// Engine-internal telemetry for every subsequent optimize call (see
    /// [`SearchConfig::telemetry`]): DP level combine passes, memo probes,
    /// bound evaluations, and cost-model expectation computes are timed
    /// into the handed-in histograms.  Purely observational — plans,
    /// costs, and every work counter stay byte-identical.
    pub fn with_telemetry(
        mut self,
        telemetry: std::sync::Arc<lec_telemetry::EngineTelemetry>,
    ) -> Self {
        self.set_telemetry(Some(telemetry));
        self
    }

    /// In-place form of [`Optimizer::with_telemetry`]; `None` uninstalls.
    pub fn set_telemetry(
        &mut self,
        telemetry: Option<std::sync::Arc<lec_telemetry::EngineTelemetry>>,
    ) {
        self.search.telemetry = telemetry;
    }

    /// The parallel-search configuration in force.
    pub fn search_config(&self) -> &SearchConfig {
        &self.search
    }

    /// The catalog this optimizer is bound to.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The memory distribution in force.
    pub fn memory(&self) -> &Distribution {
        &self.memory
    }

    /// Optimize `query` under `mode`.
    pub fn optimize(&self, query: &Query, mode: &Mode) -> Result<Optimized, OptError> {
        query.validate(self.catalog)?;
        let mut model = CostModel::new(self.catalog, query);
        if let Some(t) = &self.search.telemetry {
            model.set_telemetry(Some(std::sync::Arc::clone(t)));
        }
        let model = model;
        let start = Instant::now();
        let outcome: SearchOutcome = match mode {
            Mode::Lsc(est) => {
                optimize_lsc_from_dist_with(&model, &self.memory, *est, &self.search)?
            }
            Mode::LscAt(m) => crate::lsc::optimize_lsc_with(&model, *m, &self.search)?,
            Mode::AlgorithmA => optimize_alg_a_with(&model, &self.memory, &self.search)?,
            Mode::AlgorithmB { c } => optimize_alg_b_with(&model, &self.memory, *c, &self.search)?,
            Mode::AlgorithmC => optimize_lec_static_with(&model, &self.memory, &self.search)?,
            Mode::AlgorithmCDynamic { chain } => {
                optimize_lec_dynamic_with(&model, &self.memory, chain, &self.search)?
            }
            Mode::AlgorithmD { config } => {
                optimize_alg_d_with(&model, &self.memory, config, &self.search)?
            }
            Mode::Bushy => {
                crate::bushy::optimize_lec_bushy_with(&model, &self.memory, &self.search)?
            }
            Mode::IterativeImprovement { config, seed } => {
                crate::randomized::iterative_improvement(&model, &self.memory, config, *seed)?
            }
            Mode::SimulatedAnnealing { config, seed } => {
                crate::randomized::simulated_annealing(&model, &self.memory, config, *seed)?
            }
        };
        let mut stats = outcome.stats;
        stats.elapsed = start.elapsed();
        Ok(Optimized {
            plan: outcome.plan,
            cost: outcome.cost,
            mode: mode.name(),
            stats,
            extras: outcome.extras,
        })
    }

    /// Expected cost of an arbitrary plan under this optimizer's memory
    /// distribution (for cross-mode comparisons).
    pub fn expected_cost_of(&self, query: &Query, plan: &PlanNode) -> f64 {
        let model = CostModel::new(self.catalog, query);
        lec_cost::expected_plan_cost_static(&model, plan, &self.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};

    #[test]
    fn facade_runs_every_mode_on_example_1_1() {
        let (cat, q) = example_1_1();
        let opt = Optimizer::new(&cat, example_1_1_memory());
        let chain = MarkovChain::identity(vec![700.0, 2000.0]).unwrap();
        let modes = vec![
            Mode::Lsc(PointEstimate::Mean),
            Mode::Lsc(PointEstimate::Mode),
            Mode::LscAt(700.0),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 3 },
            Mode::AlgorithmC,
            Mode::AlgorithmCDynamic { chain },
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        ];
        for mode in modes {
            let r = opt.optimize(&q, &mode).unwrap();
            assert!(r.cost > 0.0, "{}", r.mode);
            assert!(r.plan.is_left_deep());
            assert!(r.stats.elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn all_four_counters_are_live_in_every_mode() {
        // The seed hard-coded AlgD's evals and the randomized modes' nodes
        // to zero; the engine now populates every counter uniformly.
        let (cat, q) = three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let chain = MarkovChain::identity(memory.support().to_vec()).unwrap();
        let opt = Optimizer::new(&cat, memory);
        let modes = vec![
            Mode::Lsc(PointEstimate::Mean),
            Mode::LscAt(700.0),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 3 },
            Mode::AlgorithmC,
            Mode::AlgorithmCDynamic { chain },
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
            Mode::Bushy,
            Mode::IterativeImprovement {
                config: crate::randomized::RandomizedConfig::default(),
                seed: 5,
            },
            Mode::SimulatedAnnealing {
                config: crate::randomized::RandomizedConfig::default(),
                seed: 5,
            },
        ];
        for mode in modes {
            let r = opt.optimize(&q, &mode).unwrap();
            assert!(r.stats.nodes > 0, "{}: nodes", r.mode);
            assert!(r.stats.candidates > 0, "{}: candidates", r.mode);
            assert!(r.stats.evals > 0, "{}: evals", r.mode);
            assert!(r.stats.elapsed.as_nanos() > 0, "{}: elapsed", r.mode);
        }
    }

    #[test]
    fn the_papers_headline_result() {
        // LSC (mean or mode) → Plan 1; every LEC algorithm → Plan 2,
        // with EC(Plan 2) < EC(Plan 1).
        let (cat, q) = example_1_1();
        let opt = Optimizer::new(&cat, example_1_1_memory());
        let lsc = opt.optimize(&q, &Mode::Lsc(PointEstimate::Mode)).unwrap();
        assert!(
            crate::fixtures::is_plan1(&lsc.plan),
            "{}",
            lsc.plan.compact()
        );
        for mode in [
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 2 },
            Mode::AlgorithmC,
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        ] {
            let lec = opt.optimize(&q, &mode).unwrap();
            assert!(
                crate::fixtures::is_plan2(&lec.plan),
                "{}: {}",
                lec.mode,
                lec.plan.compact()
            );
            let lsc_ec = opt.expected_cost_of(&q, &lsc.plan);
            assert!(
                lec.cost < lsc_ec,
                "{}: {} !< {}",
                lec.mode,
                lec.cost,
                lsc_ec
            );
        }
    }

    #[test]
    fn extension_modes_run_through_the_facade() {
        let (cat, q) = example_1_1();
        let opt = Optimizer::new(&cat, example_1_1_memory());
        let exact = opt.optimize(&q, &Mode::AlgorithmC).unwrap();
        for mode in [
            Mode::Bushy,
            Mode::IterativeImprovement {
                config: crate::randomized::RandomizedConfig::default(),
                seed: 5,
            },
            Mode::SimulatedAnnealing {
                config: crate::randomized::RandomizedConfig::default(),
                seed: 5,
            },
        ] {
            let r = opt.optimize(&q, &mode).unwrap();
            // On a two-table query every mode must find the exact optimum
            // (the plan space is tiny).
            assert!(
                (r.cost - exact.cost).abs() < 1.0,
                "{}: {} vs {}",
                r.mode,
                r.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn invalid_queries_are_rejected_up_front() {
        let (cat, mut q) = three_chain();
        q.joins.clear(); // disconnects the graph
        let opt = Optimizer::new(&cat, example_1_1_memory());
        assert!(matches!(
            opt.optimize(&q, &Mode::AlgorithmC),
            Err(OptError::InvalidQuery(_))
        ));
    }

    #[test]
    fn overhead_grows_with_bucket_count() {
        // Contribution 3: "the extension increases the cost of query
        // optimization by a factor depending on the granularity of the
        // parameter distribution" — evals scale with b for Algorithm C.
        let (cat, q) = three_chain();
        let mut last_evals = 0;
        for b in [1usize, 2, 4, 8] {
            let memory = lec_prob::presets::spread_family(400.0, 0.5, b).unwrap();
            let opt = Optimizer::new(&cat, memory);
            let r = opt.optimize(&q, &Mode::AlgorithmC).unwrap();
            assert!(
                r.stats.evals >= last_evals,
                "evals must grow with buckets: {} after {}",
                r.stats.evals,
                last_evals
            );
            last_evals = r.stats.evals;
        }
    }
}
