//! Bushy-plan LEC optimization — the §4 extension.
//!
//! The paper's presentation restricts the DP to left-deep plans (the
//! System R heuristic of §2.2) and lists bushy trees under concluding
//! remarks as the main thing its "rather simplistic" treatment omits.
//! Theorem 3.3's proof only uses additivity of cost over subplans and
//! linearity of expectation, neither of which cares about tree shape —
//! so the same DP over *partitions* of each subset yields the LEC bushy
//! plan.  This module implements that generalization for static memory
//! distributions (the §3.5 phase model is inherently sequential and does
//! not transfer to bushy trees without a parallelism model, which the
//! paper also flags as out of scope).
//!
//! Policy over the engine: the *same* [`crate::search::KeepBestPolicy`] +
//! [`StaticExpectationCoster`] as Algorithm C — only the
//! [`PlanShape`] changes.  That one-line difference is the whole point of
//! the pluggable engine.

use crate::error::OptError;
use crate::search::{
    run_search_with, KeepBestPolicy, PlanShape, SearchConfig, SearchOutcome,
    StaticExpectationCoster,
};
use lec_cost::CostModel;
use lec_prob::Distribution;

/// Compute the LEC plan over the *bushy* plan space (all binary trees
/// without cross products) under a static memory distribution.
pub fn optimize_lec_bushy(
    model: &CostModel<'_>,
    memory: &Distribution,
) -> Result<SearchOutcome, OptError> {
    optimize_lec_bushy_with(model, memory, &SearchConfig::default())
}

/// [`optimize_lec_bushy`] under an explicit [`SearchConfig`].  Bushy
/// levels fan out particularly well: every connected 2-partition of every
/// same-size subset is independent work.
pub fn optimize_lec_bushy_with(
    model: &CostModel<'_>,
    memory: &Distribution,
    config: &SearchConfig,
) -> Result<SearchOutcome, OptError> {
    let coster = StaticExpectationCoster::new(memory)
        .with_parallelism(config.bucket_parallelism_for(model.query()));
    let mut policy = KeepBestPolicy::new(coster);
    let run = run_search_with(model, PlanShape::Bushy, &mut policy, config)?;
    let (best, stats) = run.into_best();
    Ok(SearchOutcome::new(best.plan, best.cost, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use lec_prob::presets;

    #[test]
    fn bushy_equals_left_deep_on_two_tables() {
        // With two tables the spaces coincide.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let ld = optimize_lec_static(&model, &memory).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        assert!((ld.cost - bu.cost).abs() < 1e-9);
    }

    #[test]
    fn bushy_never_loses_to_left_deep() {
        // Left-deep plans are a subset of bushy plans.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.0, 0.4, 0.8] {
            for center in [80.0, 400.0, 2000.0] {
                let memory = presets::spread_family(center, spread, 5).unwrap();
                let ld = optimize_lec_static(&model, &memory).unwrap();
                let bu = optimize_lec_bushy(&model, &memory).unwrap();
                assert!(
                    bu.cost <= ld.cost + 1e-9,
                    "center {center} spread {spread}: bushy {} vs left-deep {}",
                    bu.cost,
                    ld.cost
                );
            }
        }
    }

    #[test]
    fn bushy_cost_replays_through_the_cost_model() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(300.0, 0.7, 4).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        let replay = lec_cost::expected_plan_cost_static(&model, &bu.plan, &memory);
        assert!(
            (bu.cost - replay).abs() / replay < 1e-9,
            "{} vs {replay}",
            bu.cost
        );
    }

    #[test]
    fn bushy_strictly_beats_left_deep_on_a_diamond() {
        // The classic bushy-win shape needs BOTH join inputs composite:
        // a "diamond" A–B–C–D chain where A⋈B and C⋈D are tiny but any
        // left-deep prefix must drag a large intermediate across the
        // middle predicate.
        let (cat, q) = crate::fixtures::diamond();
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(500.0, 0.5, 4).unwrap();
        let ld = optimize_lec_static(&model, &memory).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        assert!(
            bu.cost < ld.cost * 0.9,
            "bushy {} should clearly beat left-deep {}",
            bu.cost,
            ld.cost
        );
        assert!(
            !bu.plan.is_left_deep(),
            "winner must be bushy: {}",
            bu.plan.compact()
        );
    }

    #[test]
    fn bushy_point_distribution_matches_left_deep_at_points() {
        // At a point the bushy optimum is still ≤ the left-deep optimum;
        // for a chain of 3 they coincide (no bushy advantage possible).
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [50.0, 500.0, 5000.0] {
            let memory = Distribution::point(m);
            let ld = optimize_lec_static(&model, &memory).unwrap();
            let bu = optimize_lec_bushy(&model, &memory).unwrap();
            assert!(bu.cost <= ld.cost + 1e-9);
        }
    }
}
