//! Bushy-plan LEC optimization — the §4 extension.
//!
//! The paper's presentation restricts the DP to left-deep plans (the
//! System R heuristic of §2.2) and lists bushy trees under concluding
//! remarks as the main thing its "rather simplistic" treatment omits.
//! Theorem 3.3's proof only uses additivity of cost over subplans and
//! linearity of expectation, neither of which cares about tree shape —
//! so the same DP over *partitions* of each subset yields the LEC bushy
//! plan.  This module implements that generalization for static memory
//! distributions (the §3.5 phase model is inherently sequential and does
//! not transfer to bushy trees without a parallelism model, which the
//! paper also flags as out of scope).

use crate::dp::{insert_entry, DpEntry, DpStats};
use crate::error::OptError;
use lec_cost::CostModel;
use lec_plan::{JoinMethod, OrderProperty, PlanNode, TableSet};
use lec_prob::Distribution;
use std::collections::HashMap;

/// Result of the bushy DP.
#[derive(Debug, Clone)]
pub struct BushyResult {
    /// The LEC plan over the bushy space.
    pub plan: PlanNode,
    /// Its expected cost.
    pub expected_cost: f64,
    /// Search statistics.
    pub stats: DpStats,
}

/// The output order of joining two composites (general-tree analogue of
/// `dp::join_output_order`).
fn bushy_output_order(
    model: &CostModel<'_>,
    left: TableSet,
    left_order: OrderProperty,
    right: TableSet,
    method: JoinMethod,
) -> OrderProperty {
    match method {
        JoinMethod::SortMerge => {
            let crossing = model.query().joins_crossing(left, right);
            match crossing.first() {
                Some(&i) => model.equivalences().sorted_on(model.query().joins[i].left),
                None => OrderProperty::None,
            }
        }
        JoinMethod::PageNestedLoop => left_order,
        JoinMethod::GraceHash | JoinMethod::BlockNestedLoop => OrderProperty::None,
    }
}

/// Compute the LEC plan over the *bushy* plan space (all binary trees
/// without cross products) under a static memory distribution.
pub fn optimize_lec_bushy(
    model: &CostModel<'_>,
    memory: &Distribution,
) -> Result<BushyResult, OptError> {
    let query = model.query();
    let n = query.n_tables();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    model.reset_evals();
    let mut stats = DpStats::default();
    let mut table: HashMap<TableSet, Vec<DpEntry>> = HashMap::new();

    for idx in 0..n {
        let entries = crate::dp::access_entries(model, idx);
        stats.nodes += 1;
        table.insert(TableSet::singleton(idx), entries);
    }

    for k in 2..=n {
        for set in TableSet::subsets_of_size(n, k) {
            let mut entries: Vec<DpEntry> = Vec::new();
            // Enumerate ordered partitions (left, right): `sub` walks all
            // non-empty proper subsets of `set` via the standard trick.
            let bits = set.bits();
            let mut sub = (bits - 1) & bits;
            while sub != 0 {
                let left = TableSet::from_bits(sub);
                let right = TableSet::from_bits(bits & !sub);
                sub = (sub - 1) & bits;
                // Skip cross products.
                if query.joins_crossing(left, right).is_empty() {
                    continue;
                }
                let (Some(left_entries), Some(right_entries)) =
                    (table.get(&left), table.get(&right))
                else {
                    continue;
                };
                let sel: f64 = query
                    .joins_crossing(left, right)
                    .iter()
                    .map(|&i| query.joins[i].selectivity.mean())
                    .product();
                let mut new_entries: Vec<DpEntry> = Vec::new();
                for le in left_entries {
                    for re in right_entries {
                        for method in JoinMethod::ALL {
                            stats.candidates += 1;
                            let join_ec = memory.expect(|m| {
                                model.join_cost(method, le.pages, re.pages, m)
                            });
                            let cost = le.cost + re.cost + join_ec;
                            let order = bushy_output_order(
                                model, left, le.order, right, method,
                            );
                            let pages =
                                model.join_output_pages(le.pages, re.pages, sel);
                            insert_entry(
                                &mut new_entries,
                                DpEntry {
                                    plan: PlanNode::join(
                                        method,
                                        le.plan.clone(),
                                        re.plan.clone(),
                                    ),
                                    cost,
                                    pages,
                                    order,
                                },
                            );
                        }
                    }
                }
                for e in new_entries {
                    insert_entry(&mut entries, e);
                }
            }
            if !entries.is_empty() {
                stats.nodes += 1;
                table.insert(set, entries);
            }
        }
    }

    let root = table
        .remove(&TableSet::full(n))
        .ok_or(OptError::NoPlanFound)?;
    let eq = model.equivalences();
    let mut best: Option<(PlanNode, f64)> = None;
    for e in root {
        let (plan, cost) = match query.required_order {
            Some(want) if !eq.satisfies(e.order, want) => {
                let sc = memory.expect(|m| model.sort_cost(e.pages, m));
                (PlanNode::sort(e.plan, want), e.cost + sc)
            }
            _ => (e.plan, e.cost),
        };
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((plan, cost));
        }
    }
    let (plan, expected_cost) = best.ok_or(OptError::NoPlanFound)?;
    stats.evals = model.evals();
    Ok(BushyResult { plan, expected_cost, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg_c::optimize_lec_static;
    use crate::fixtures::{example_1_1, example_1_1_memory, three_chain};
    use lec_prob::presets;

    #[test]
    fn bushy_equals_left_deep_on_two_tables() {
        // With two tables the spaces coincide.
        let (cat, q) = example_1_1();
        let model = CostModel::new(&cat, &q);
        let memory = example_1_1_memory();
        let ld = optimize_lec_static(&model, &memory).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        assert!((ld.cost - bu.expected_cost).abs() < 1e-9);
    }

    #[test]
    fn bushy_never_loses_to_left_deep() {
        // Left-deep plans are a subset of bushy plans.
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for spread in [0.0, 0.4, 0.8] {
            for center in [80.0, 400.0, 2000.0] {
                let memory = presets::spread_family(center, spread, 5).unwrap();
                let ld = optimize_lec_static(&model, &memory).unwrap();
                let bu = optimize_lec_bushy(&model, &memory).unwrap();
                assert!(
                    bu.expected_cost <= ld.cost + 1e-9,
                    "center {center} spread {spread}: bushy {} vs left-deep {}",
                    bu.expected_cost,
                    ld.cost
                );
            }
        }
    }

    #[test]
    fn bushy_cost_replays_through_the_cost_model() {
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(300.0, 0.7, 4).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        let replay =
            lec_cost::expected_plan_cost_static(&model, &bu.plan, &memory);
        assert!(
            (bu.expected_cost - replay).abs() / replay < 1e-9,
            "{} vs {replay}",
            bu.expected_cost
        );
    }

    #[test]
    fn bushy_strictly_beats_left_deep_on_a_diamond() {
        // The classic bushy-win shape needs BOTH join inputs composite:
        // a "diamond" A–B–C–D chain where A⋈B and C⋈D are tiny but any
        // left-deep prefix must drag a large intermediate across the
        // middle predicate.
        let (cat, q) = diamond();
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(500.0, 0.5, 4).unwrap();
        let ld = optimize_lec_static(&model, &memory).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        assert!(
            bu.expected_cost < ld.cost * 0.9,
            "bushy {} should clearly beat left-deep {}",
            bu.expected_cost,
            ld.cost
        );
        assert!(!bu.plan.is_left_deep(), "winner must be bushy: {}", bu.plan.compact());
    }

    /// Four 100k-page tables; A⋈B and C⋈D each ~100 pages, but the middle
    /// B–C predicate is mild, so (A⋈B)⋈C is ~100k pages.  Exported for the
    /// E14 experiment via `fixtures`-style reuse.
    fn diamond() -> (lec_catalog::Catalog, lec_plan::Query) {
        crate::fixtures::diamond()
    }

    #[test]
    fn bushy_point_distribution_matches_left_deep_at_points() {
        // At a point the bushy optimum is still ≤ the left-deep optimum;
        // for a chain of 3 they coincide (no bushy advantage possible).
        let (cat, q) = three_chain();
        let model = CostModel::new(&cat, &q);
        for m in [50.0, 500.0, 5000.0] {
            let memory = Distribution::point(m);
            let ld = optimize_lec_static(&model, &memory).unwrap();
            let bu = optimize_lec_bushy(&model, &memory).unwrap();
            assert!(bu.expected_cost <= ld.cost + 1e-9);
        }
    }
}
