//! Canonical fixtures from the paper, reused by tests, examples and the
//! experiment harness.

use lec_catalog::{Catalog, ColumnStats, TableStats};
use lec_plan::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_prob::Distribution;

/// The setting of Example 1.1: relation `A` of 1,000,000 pages, `B` of
/// 400,000 pages, a join whose result is 3000 pages, and output required
/// sorted on the join column.  Returns `(catalog, query)`.
pub fn example_1_1() -> (Catalog, Query) {
    let mut cat = Catalog::new();
    let a = cat.add_table(
        "A",
        TableStats::new(
            1_000_000,
            50_000_000,
            vec![ColumnStats::plain("k", 100_000)],
        ),
    );
    let b = cat.add_table(
        "B",
        TableStats::new(400_000, 20_000_000, vec![ColumnStats::plain("k", 100_000)]),
    );
    let sel = 3000.0 / (1_000_000.0 * 400_000.0);
    let query = Query {
        tables: vec![QueryTable::bare(a), QueryTable::bare(b)],
        joins: vec![JoinPredicate::exact(
            ColumnRef::new(0, 0),
            ColumnRef::new(1, 0),
            sel,
        )],
        required_order: Some(ColumnRef::new(0, 0)),
    };
    (cat, query)
}

/// The memory distribution of Example 1.1: "available memory is estimated
/// to be 2000 pages 80% of the time and 700 pages 20% of the time".
pub fn example_1_1_memory() -> Distribution {
    lec_prob::presets::example_1_1_memory()
}

/// A small three-table chain query with exact sizes, handy for optimality
/// tests: sizes chosen so different memory regimes prefer different join
/// orders and methods.
pub fn three_chain() -> (Catalog, Query) {
    let mut cat = Catalog::new();
    let a = cat.add_table(
        "A",
        TableStats::new(40_000, 2_000_000, vec![ColumnStats::plain("x", 1000)]),
    );
    let b = cat.add_table(
        "B",
        TableStats::new(
            10_000,
            500_000,
            vec![ColumnStats::plain("x", 1000), ColumnStats::plain("y", 500)],
        ),
    );
    let c = cat.add_table(
        "C",
        TableStats::new(90_000, 4_500_000, vec![ColumnStats::plain("y", 500)]),
    );
    let query = Query {
        tables: vec![
            QueryTable::bare(a),
            QueryTable::bare(b),
            QueryTable::bare(c),
        ],
        joins: vec![
            JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 2e-8),
            JoinPredicate::exact(ColumnRef::new(1, 1), ColumnRef::new(2, 0), 5e-9),
        ],
        required_order: None,
    };
    (cat, query)
}

/// A "diamond" chain `A–B–C–D` built so that the optimal plan is *bushy*:
/// `A⋈B` and `C⋈D` are tiny (≈100 pages each) while the middle `B–C`
/// predicate is mild, so every left-deep order must carry a ≈100k-page
/// intermediate across it.  Used by the §4 bushy extension tests and E14.
pub fn diamond() -> (Catalog, Query) {
    let mut cat = Catalog::new();
    let ids: Vec<_> = ["A", "B", "C", "D"]
        .iter()
        .map(|name| {
            cat.add_table(
                *name,
                TableStats::new(
                    100_000,
                    5_000_000,
                    vec![ColumnStats::plain("x", 1000), ColumnStats::plain("y", 1000)],
                ),
            )
        })
        .collect();
    let tiny = 100.0 / (100_000.0f64 * 100_000.0); // 100-page results
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins: vec![
            JoinPredicate::exact(ColumnRef::new(0, 1), ColumnRef::new(1, 0), tiny),
            JoinPredicate::exact(ColumnRef::new(1, 1), ColumnRef::new(2, 0), 1e-1),
            JoinPredicate::exact(ColumnRef::new(2, 1), ColumnRef::new(3, 0), tiny),
        ],
        required_order: None,
    };
    (cat, query)
}

/// A fixed `n`-table chain over round-number table sizes with a required
/// output order: the scaling fixture for optimization-effort experiments
/// (identical shape at every `n`).  The required order keeps sort-merge
/// entries interesting at every dag node, so nodes carry several
/// candidates and the evaluation cache has repetition to absorb.
pub fn scaling_chain(n: usize) -> (Catalog, Query) {
    assert!(n >= 2, "a chain needs at least two tables");
    let mut catalog = Catalog::new();
    let sizes: Vec<u64> = (0..n).map(|i| 10_000 * (1 + (i as u64 % 5))).collect();
    let ids: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &pages)| {
            catalog.add_table(
                format!("S{i}"),
                TableStats::new(
                    pages,
                    pages * 50,
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins: (0..n - 1)
            .map(|i| {
                let target = (sizes[i].min(sizes[i + 1]) as f64) * 0.3;
                JoinPredicate::exact(
                    ColumnRef::new(i, 1),
                    ColumnRef::new(i + 1, 0),
                    target / (sizes[i] as f64 * sizes[i + 1] as f64),
                )
            })
            .collect(),
        required_order: Some(ColumnRef::new(n - 1, 1)),
    };
    (catalog, query)
}

/// A fixed `n`-table star: hub table 0 joined to each spoke, round-number
/// sizes, required output order on the last spoke.  The scaling fixture
/// for *parallel* optimization-effort experiments: unlike the chain —
/// whose connected subsets are contiguous runs, a handful per DP level —
/// every subset containing the hub is connected, so mid levels carry
/// `C(n-1, k-1)` working nodes and give the level fan-out real width.
pub fn scaling_star(n: usize) -> (Catalog, Query) {
    assert!(n >= 2, "a star needs a hub and at least one spoke");
    let mut catalog = Catalog::new();
    let sizes: Vec<u64> = (0..n).map(|i| 10_000 * (1 + (i as u64 % 5))).collect();
    let ids: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &pages)| {
            catalog.add_table(
                format!("H{i}"),
                TableStats::new(
                    pages,
                    pages * 50,
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins: (1..n)
            .map(|i| {
                let target = (sizes[0].min(sizes[i]) as f64) * 0.3;
                JoinPredicate::exact(
                    ColumnRef::new(0, 1),
                    ColumnRef::new(i, 0),
                    target / (sizes[0] as f64 * sizes[i] as f64),
                )
            })
            .collect(),
        required_order: Some(ColumnRef::new(n - 1, 1)),
    };
    (catalog, query)
}

/// Selectivity of an *expansive* pruning-fixture join: output is 500× the
/// unjoined product's page factor, so any subset whose internal joins
/// include two of these carries a size floor far above what the good
/// orders ever materialize.
const PRUNING_EXPANSIVE_SEL: f64 = 0.5;

/// Selectivity of a *reductive* pruning-fixture join against a 1000-page
/// partner: each one shrinks the intermediate by 100×.
const PRUNING_REDUCTIVE_SEL: f64 = 1e-5;

/// An `n`-table chain built to exercise branch-and-bound pruning: every
/// table is 1000 pages, most adjacent joins are strongly reductive
/// (output shrinks 100× per join) but the joins at positions `n/3` and
/// `2n/3` are expansive (output grows 500×).  Orders that cross an
/// expansive edge while the running intermediate is still large are
/// hopeless — a contiguous run that starts *at* an expansive edge has a
/// size floor of ~5·10⁵ pages against incumbents in the tens of
/// thousands, so the engine discards it outright — while the good orders
/// start between the expansive edges and shrink the intermediate to a
/// page or two before crossing either one.
pub fn pruning_chain(n: usize) -> (Catalog, Query) {
    assert!(n >= 4, "the pruning chain needs at least four tables");
    let mut catalog = Catalog::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            catalog.add_table(
                format!("P{i}"),
                TableStats::new(
                    1000,
                    50_000,
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins: (0..n - 1)
            .map(|i| {
                let sel = if i == n / 3 || i == (2 * n) / 3 {
                    PRUNING_EXPANSIVE_SEL
                } else {
                    PRUNING_REDUCTIVE_SEL
                };
                JoinPredicate::exact(ColumnRef::new(i, 1), ColumnRef::new(i + 1, 0), sel)
            })
            .collect(),
        required_order: Some(ColumnRef::new(n - 1, 1)),
    };
    (catalog, query)
}

/// An `n`-table star built to exercise branch-and-bound pruning: a
/// 100-page hub, 1000-page spokes, and every fifth spoke (spoke indices
/// `1, 6, 11, …`) expansive while the rest are strongly reductive.  Every
/// hub-containing subset is connected, so unlike the chain the bad
/// subsets are plentiful: any subset combining expansive spokes with few
/// reductive ones has a size floor orders of magnitude above the
/// incumbent and is discarded before its combine loop, while the good
/// orders join every reductive spoke first and pay for the expansive
/// ones only once the intermediate has collapsed to a page.
pub fn pruning_star(n: usize) -> (Catalog, Query) {
    assert!(
        n >= 3,
        "the pruning star needs a hub and at least two spokes"
    );
    let mut catalog = Catalog::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let pages = if i == 0 { 100 } else { 1000 };
            catalog.add_table(
                format!("Q{i}"),
                TableStats::new(
                    pages,
                    pages * 50,
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins: (1..n)
            .map(|i| {
                let sel = if i % 5 == 1 {
                    PRUNING_EXPANSIVE_SEL
                } else {
                    PRUNING_REDUCTIVE_SEL
                };
                JoinPredicate::exact(ColumnRef::new(0, 1), ColumnRef::new(i, 0), sel)
            })
            .collect(),
        required_order: Some(ColumnRef::new(n - 1, 1)),
    };
    (catalog, query)
}

/// Selectivity of an ordinary pruning-clique join: mildly reductive, so
/// intermediates shrink but the graph stays far from degenerate.
const PRUNING_CLIQUE_SEL: f64 = 1e-2;

/// An `n`-table clique built to exercise branch-and-bound pruning on a
/// *dense* join graph: every pair of 1000-page tables is joined, so every
/// subset of every size is connected and the structural
/// disconnected-subset discard never fires — the bound tiers carry the
/// whole search.  The joins among tables `1`, `6` and `11` are expansive
/// ([`PRUNING_EXPANSIVE_SEL`]); every other pair is mildly reductive.
/// Subsets gathering two or three of the expansive trio before the rest
/// of the clique has collapsed the intermediate carry size floors of
/// `5·10⁵` pages and up against incumbents in the tens of thousands and
/// are discarded outright, while a clique's quadratic edge count makes
/// the per-edge sharp floor's frontier genuinely multi-way at every
/// level.
pub fn pruning_clique(n: usize) -> (Catalog, Query) {
    assert!(n >= 4, "the pruning clique needs at least four tables");
    let heavy = |i: usize| i == 1 || i == 6 || i == 11;
    let mut catalog = Catalog::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            catalog.add_table(
                format!("K{i}"),
                TableStats::new(
                    1000,
                    50_000,
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let mut joins = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let sel = if heavy(u) && heavy(v) {
                PRUNING_EXPANSIVE_SEL
            } else {
                PRUNING_CLIQUE_SEL
            };
            joins.push(JoinPredicate::exact(
                ColumnRef::new(u, 1),
                ColumnRef::new(v, 0),
                sel,
            ));
        }
    }
    let query = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins,
        required_order: Some(ColumnRef::new(n - 1, 1)),
    };
    (catalog, query)
}

/// Recognizer for Example 1.1's Plan 1: a bare sort-merge join of the two
/// scans (either orientation — the SM formula is symmetric).
pub fn is_plan1(plan: &lec_plan::PlanNode) -> bool {
    use lec_plan::{JoinMethod, PlanNode};
    matches!(
        plan,
        PlanNode::Join { method: JoinMethod::SortMerge, outer, inner }
            if matches!(**outer, PlanNode::SeqScan { .. })
                && matches!(**inner, PlanNode::SeqScan { .. })
    )
}

/// Recognizer for Example 1.1's Plan 2: Grace hash join (either
/// orientation) followed by a sort of the small result.
pub fn is_plan2(plan: &lec_plan::PlanNode) -> bool {
    use lec_plan::{JoinMethod, PlanNode};
    match plan {
        PlanNode::Sort { input, .. } => matches!(
            &**input,
            PlanNode::Join { method: JoinMethod::GraceHash, outer, inner }
                if matches!(**outer, PlanNode::SeqScan { .. })
                    && matches!(**inner, PlanNode::SeqScan { .. })
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizers_accept_both_orientations() {
        use lec_plan::{JoinMethod, PlanNode};
        for (o, i) in [(0usize, 1usize), (1, 0)] {
            let p1 = PlanNode::join(
                JoinMethod::SortMerge,
                PlanNode::SeqScan { table: o },
                PlanNode::SeqScan { table: i },
            );
            assert!(is_plan1(&p1));
            assert!(!is_plan2(&p1));
            let p2 = PlanNode::sort(
                PlanNode::join(
                    JoinMethod::GraceHash,
                    PlanNode::SeqScan { table: o },
                    PlanNode::SeqScan { table: i },
                ),
                ColumnRef::new(0, 0),
            );
            assert!(is_plan2(&p2));
            assert!(!is_plan1(&p2));
        }
    }

    #[test]
    fn fixtures_validate() {
        let (cat, q) = example_1_1();
        assert_eq!(q.validate(&cat), Ok(()));
        let (cat, q) = three_chain();
        assert_eq!(q.validate(&cat), Ok(()));
    }

    #[test]
    fn example_memory_shape() {
        let m = example_1_1_memory();
        assert_eq!(m.support(), &[700.0, 2000.0]);
        assert_eq!(m.mode(), 2000.0);
    }
}
