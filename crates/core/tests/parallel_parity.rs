//! Parallel-engine parity: for every candidate policy and every mode
//! wrapper, a search fanned out across worker threads must return a
//! `SearchOutcome` **byte-identical** to the serial engine's — same plan,
//! same cost bits, same `evals`, `cache_hits`, `candidates` and `nodes` —
//! on randomized 3–6-table fixtures at 2, 4 and 8 threads.  Also pins the
//! failure mode: a coster that panics inside a worker (a "poisoned
//! shard") must surface as `OptError::WorkerPanicked`, not a deadlock or
//! an unwound caller, and must leave the model usable.

use lec_core::search::{PersistentPool, PhaseCoster, SearchConfig, WorkerPool};
use lec_core::{
    exhaustive_best_with, optimize_alg_b_with, optimize_alg_d_with, optimize_lec_bushy_with,
    optimize_lec_dynamic_with, optimize_lec_static_with, optimize_lsc_with, AlgDConfig, Objective,
    OptError, SearchOutcome,
};
use lec_cost::CostModel;
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_prob::{presets, MarkovChain};
use proptest::prelude::*;
use std::sync::Arc;

fn workload(seed: u64, n: usize) -> (lec_catalog::Catalog, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xBEEF);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology: Topology::Random,
            ..Default::default()
        },
    );
    (cat, q)
}

/// A parallel config with the size gates forced open, so even 3-table
/// fixtures exercise the fan-out machinery.
fn forced(threads: usize) -> SearchConfig {
    SearchConfig {
        threads,
        fanout_threshold: 1,
        ..Default::default()
    }
}

/// Assert two outcomes are byte-identical in everything the engine
/// promises determinism for (elapsed is wall-clock and excluded).
fn assert_identical(name: &str, threads: usize, serial: &SearchOutcome, parallel: &SearchOutcome) {
    assert_eq!(&serial.plan, &parallel.plan, "{name}@{threads}: plan drift");
    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "{name}@{threads}: cost drift ({} vs {})",
        serial.cost,
        parallel.cost
    );
    assert_eq!(
        serial.stats.evals, parallel.stats.evals,
        "{name}@{threads}: evals drift"
    );
    assert_eq!(
        serial.stats.cache_hits, parallel.stats.cache_hits,
        "{name}@{threads}: cache_hits drift"
    );
    assert_eq!(
        serial.stats.candidates, parallel.stats.candidates,
        "{name}@{threads}: candidates drift"
    );
    assert_eq!(
        serial.stats.nodes, parallel.stats.nodes,
        "{name}@{threads}: nodes drift"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every policy, serial vs 2/4/8 threads, on randomized fixtures.
    /// Fresh models per run keep the eval cache (and so `evals` /
    /// `cache_hits`) comparable.
    #[test]
    fn parallel_search_is_byte_identical_for_every_policy(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();
        let serial_cfg = SearchConfig::serial();

        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let memory2 = memory.clone();
        let memory3 = memory.clone();
        let memory4 = memory.clone();
        let memory5 = memory.clone();
        let memory6 = memory.clone();
        let memory7 = memory.clone();
        let chain2 = chain.clone();
        let runners: Vec<(&str, Box<Runner>)> = vec![
            ("lsc", Box::new(move |m, c| optimize_lsc_with(m, memory2.mean(), c))),
            ("alg_b", Box::new(move |m, c| optimize_alg_b_with(m, &memory3, 3, c))),
            ("alg_c", Box::new(move |m, c| optimize_lec_static_with(m, &memory4, c))),
            ("alg_c_dyn", Box::new(move |m, c| optimize_lec_dynamic_with(m, &memory5, &chain2, c))),
            ("alg_d", Box::new(move |m, c| optimize_alg_d_with(m, &memory6, &AlgDConfig::default(), c))),
            ("bushy", Box::new(move |m, c| optimize_lec_bushy_with(m, &memory7, c))),
            ("exhaustive", Box::new(move |m, c| exhaustive_best_with(m, &Objective::Expected(&memory), c))),
        ];

        for (name, run) in &runners {
            let serial_model = CostModel::new(&cat, &q);
            let serial = run(&serial_model, &serial_cfg).unwrap();
            for threads in [2usize, 4, 8] {
                let par_model = CostModel::new(&cat, &q);
                let parallel = run(&par_model, &forced(threads)).unwrap();
                assert_identical(name, threads, &serial, &parallel);
            }
        }
    }

    /// The intra-candidate bucket fan-out (forced on by an eval threshold
    /// of 1) is bit-identical too.  The two fan-out axes are exclusive by
    /// design — bucket parallelism only engages when the level fan-out
    /// does not — so the level gate is left closed (`fanout_threshold`
    /// maxed) to actually reach the bucket path.
    #[test]
    fn bucket_fanout_is_byte_identical(
        seed in 0u64..4000,
        n in 3usize..5,
        center in 60.0f64..2500.0,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, 0.6, 5).unwrap();
        let serial_model = CostModel::new(&cat, &q);
        let serial = optimize_lec_static_with(&serial_model, &memory, &SearchConfig::serial()).unwrap();
        for threads in [2usize, 4] {
            let cfg = SearchConfig {
                threads,
                fanout_threshold: usize::MAX,
                bucket_evals_threshold: 1,
                ..Default::default()
            };
            let par_model = CostModel::new(&cat, &q);
            let parallel = optimize_lec_static_with(&par_model, &memory, &cfg).unwrap();
            assert_identical("alg_c+buckets", threads, &serial, &parallel);
            let d_serial_model = CostModel::new(&cat, &q);
            let d_serial = optimize_alg_d_with(
                &d_serial_model, &memory, &AlgDConfig::default(), &SearchConfig::serial(),
            ).unwrap();
            let d_model = CostModel::new(&cat, &q);
            let d_parallel = optimize_alg_d_with(
                &d_model, &memory, &AlgDConfig::default(), &cfg,
            ).unwrap();
            assert_identical("alg_d+buckets", threads, &d_serial, &d_parallel);
        }
    }
}

/// The persistent cross-search pool must be invisible in outcomes: for
/// every policy, a search whose workers come from long-lived parked
/// threads is byte-identical to the serial driver at 2, 4 and 8 threads —
/// and one pool serves many searches (and many thread counts) in a row.
#[test]
fn persistent_pool_searches_are_byte_identical_to_serial() {
    let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::new(8));
    let memory = presets::spread_family(600.0, 0.6, 4).unwrap();
    let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();
    for seed in [3u64, 17, 101] {
        let (cat, q) = workload(seed, 5);
        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let runners: Vec<(&str, Box<Runner>)> = vec![
            ("alg_c", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_lec_static_with(model, &m, c))
            }),
            ("alg_c_dyn", {
                let (m, ch) = (memory.clone(), chain.clone());
                Box::new(move |model, c| optimize_lec_dynamic_with(model, &m, &ch, c))
            }),
            ("alg_d", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_alg_d_with(model, &m, &AlgDConfig::default(), c))
            }),
            ("bushy", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_lec_bushy_with(model, &m, c))
            }),
        ];
        for (name, run) in &runners {
            let serial_model = CostModel::new(&cat, &q);
            let serial = run(&serial_model, &SearchConfig::serial()).unwrap();
            for threads in [2usize, 4, 8] {
                let cfg = SearchConfig {
                    pool: Some(Arc::clone(&pool)),
                    ..forced(threads)
                };
                let par_model = CostModel::new(&cat, &q);
                let parallel = run(&par_model, &cfg).unwrap();
                assert_identical(&format!("{name}+pool"), threads, &serial, &parallel);
            }
        }
    }
}

/// A panicking search through the persistent pool surfaces as
/// `WorkerPanicked` and leaves the pool healthy for the next search.
#[test]
fn persistent_pool_survives_a_poisoned_search() {
    use lec_core::search::{run_search_with, KeepBestPolicy, PlanShape};
    let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::new(4));
    let (cat, q) = lec_core::fixtures::scaling_chain(5);
    let model = CostModel::new(&cat, &q);
    let cfg = SearchConfig {
        pool: Some(Arc::clone(&pool)),
        ..forced(4)
    };
    let mut policy = KeepBestPolicy::new(PoisonedCoster);
    let res = run_search_with(&model, PlanShape::LeftDeep, &mut policy, &cfg);
    assert!(matches!(res, Err(OptError::WorkerPanicked)), "got {res:?}");
    // The same pool then answers a healthy parallel search, byte-identical
    // to serial.
    let memory = presets::spread_family(400.0, 0.5, 4).unwrap();
    let healthy_model = CostModel::new(&cat, &q);
    let healthy = optimize_lec_static_with(&healthy_model, &memory, &cfg).unwrap();
    let serial_model = CostModel::new(&cat, &q);
    let serial = optimize_lec_static_with(&serial_model, &memory, &SearchConfig::serial()).unwrap();
    assert_identical("healthy-after-poison", 4, &serial, &healthy);
}

/// A coster that panics when it sees a composite join — always on a
/// worker thread once the fan-out is forced on.
#[derive(Debug, Clone)]
struct PoisonedCoster;

impl PhaseCoster for PoisonedCoster {
    fn join_cost(
        &self,
        _model: &CostModel<'_>,
        _ctx: &lec_core::search::JoinContext,
        _method: lec_plan::JoinMethod,
        _outer: f64,
        _inner: f64,
    ) -> f64 {
        panic!("poisoned shard: the coster blew up mid-combine")
    }

    fn sort_cost(
        &self,
        _model: &CostModel<'_>,
        _set: lec_plan::TableSet,
        _phase: usize,
        _pages: f64,
    ) -> f64 {
        panic!("poisoned shard: the coster blew up mid-sort")
    }
}

#[test]
fn panicking_coster_propagates_as_error_not_deadlock() {
    use lec_core::search::{run_search_with, KeepBestPolicy, PlanShape};
    let (cat, q) = lec_core::fixtures::scaling_chain(5);
    let model = CostModel::new(&cat, &q);
    for threads in [2usize, 4, 8] {
        let mut policy = KeepBestPolicy::new(PoisonedCoster);
        let res = run_search_with(&model, PlanShape::LeftDeep, &mut policy, &forced(threads));
        assert!(
            matches!(res, Err(OptError::WorkerPanicked)),
            "threads={threads}: expected WorkerPanicked, got {res:?}"
        );
    }
    // The shard mutexes recover from the poisoned compute: the same model
    // still answers a healthy search afterwards.
    let healthy = lec_core::optimize_lsc(&model, 400.0).unwrap();
    assert!(healthy.cost > 0.0);
}

#[test]
fn workaware_gate_keeps_sparse_chains_serial() {
    // An 8-table chain has C(8,4) = 70 subsets at its widest level but
    // only 5 connected ones — under the default threshold it must stay
    // serial; a 10-table star (C(9,4) = 126 connected mid-level subsets)
    // must fan out.
    let (_, chain) = lec_core::fixtures::scaling_chain(8);
    let (_, star) = lec_core::fixtures::scaling_star(10);
    let cfg = SearchConfig::with_threads(4);
    assert!(!cfg.fans_out(&chain), "sparse chain must stay serial");
    assert!(cfg.fans_out(&star), "wide star must fan out");
    assert!(!SearchConfig::serial().fans_out(&star));
    // Exclusive axes: when the level fan-out engages, bucket parallelism
    // is off; when it doesn't, bucket parallelism carries the threads.
    assert_eq!(cfg.bucket_parallelism_for(&star).threads, 1);
    assert_eq!(cfg.bucket_parallelism_for(&chain).threads, 4);
}

#[test]
fn serial_config_takes_the_serial_path() {
    // threads = 1 must behave exactly like run_search: same result type,
    // no worker machinery (observable via WorkerPanicked never appearing
    // for a healthy policy, and identical outcomes).
    let (cat, q) = lec_core::fixtures::three_chain();
    let model = CostModel::new(&cat, &q);
    let memory = presets::spread_family(400.0, 0.6, 4).unwrap();
    let a = lec_core::optimize_lec_static(&model, &memory).unwrap();
    let model2 = CostModel::new(&cat, &q);
    let b = optimize_lec_static_with(&model2, &memory, &SearchConfig::serial()).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert!(SearchConfig::serial().effective_threads() == 1);
    assert!(SearchConfig::with_threads(7).effective_threads() == 7);
    assert!(SearchConfig::default().effective_threads() >= 1);
}
