//! Parallel-engine parity: for every candidate policy and every mode
//! wrapper, a search fanned out across worker threads must return a
//! `SearchOutcome` **byte-identical** to the serial engine's — same plan,
//! same cost bits, same `evals`, `cache_hits`, `candidates` and `nodes` —
//! on randomized 3–6-table fixtures at 2, 4 and 8 threads.  Also pins the
//! failure mode: a coster that panics inside a worker (a "poisoned
//! shard") must surface as `OptError::WorkerPanicked`, not a deadlock or
//! an unwound caller, and must leave the model usable.

use lec_core::search::{PersistentPool, PhaseCoster, SearchConfig, WorkerPool};
use lec_core::{
    exhaustive_best_with, optimize_alg_b_with, optimize_alg_d_with, optimize_lec_bushy_with,
    optimize_lec_dynamic_with, optimize_lec_static_with, optimize_lsc_with, AlgDConfig, Objective,
    OptError, SearchOutcome,
};
use lec_cost::CostModel;
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_prob::{presets, MarkovChain};
use proptest::prelude::*;
use std::sync::Arc;

fn workload(seed: u64, n: usize) -> (lec_catalog::Catalog, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xBEEF);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology: Topology::Random,
            ..Default::default()
        },
    );
    (cat, q)
}

/// A parallel config with the size gates forced open, so even 3-table
/// fixtures exercise the fan-out machinery.
fn forced(threads: usize) -> SearchConfig {
    SearchConfig {
        threads,
        fanout_threshold: 1,
        ..Default::default()
    }
}

/// Assert two outcomes are byte-identical in everything the engine
/// promises determinism for (elapsed is wall-clock and excluded).
fn assert_identical(name: &str, threads: usize, serial: &SearchOutcome, parallel: &SearchOutcome) {
    assert_eq!(&serial.plan, &parallel.plan, "{name}@{threads}: plan drift");
    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "{name}@{threads}: cost drift ({} vs {})",
        serial.cost,
        parallel.cost
    );
    assert_eq!(
        serial.stats.evals, parallel.stats.evals,
        "{name}@{threads}: evals drift"
    );
    assert_eq!(
        serial.stats.cache_hits, parallel.stats.cache_hits,
        "{name}@{threads}: cache_hits drift"
    );
    assert_eq!(
        serial.stats.candidates, parallel.stats.candidates,
        "{name}@{threads}: candidates drift"
    );
    assert_eq!(
        serial.stats.nodes, parallel.stats.nodes,
        "{name}@{threads}: nodes drift"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every policy, serial vs 2/4/8 threads, on randomized fixtures.
    /// Fresh models per run keep the eval cache (and so `evals` /
    /// `cache_hits`) comparable.
    #[test]
    fn parallel_search_is_byte_identical_for_every_policy(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();
        let serial_cfg = SearchConfig::serial();

        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let memory2 = memory.clone();
        let memory3 = memory.clone();
        let memory4 = memory.clone();
        let memory5 = memory.clone();
        let memory6 = memory.clone();
        let memory7 = memory.clone();
        let chain2 = chain.clone();
        let runners: Vec<(&str, Box<Runner>)> = vec![
            ("lsc", Box::new(move |m, c| optimize_lsc_with(m, memory2.mean(), c))),
            ("alg_b", Box::new(move |m, c| optimize_alg_b_with(m, &memory3, 3, c))),
            ("alg_c", Box::new(move |m, c| optimize_lec_static_with(m, &memory4, c))),
            ("alg_c_dyn", Box::new(move |m, c| optimize_lec_dynamic_with(m, &memory5, &chain2, c))),
            ("alg_d", Box::new(move |m, c| optimize_alg_d_with(m, &memory6, &AlgDConfig::default(), c))),
            ("bushy", Box::new(move |m, c| optimize_lec_bushy_with(m, &memory7, c))),
            ("exhaustive", Box::new(move |m, c| exhaustive_best_with(m, &Objective::Expected(&memory), c))),
        ];

        for (name, run) in &runners {
            let serial_model = CostModel::new(&cat, &q);
            let serial = run(&serial_model, &serial_cfg).unwrap();
            for threads in [2usize, 4, 8] {
                let par_model = CostModel::new(&cat, &q);
                let parallel = run(&par_model, &forced(threads)).unwrap();
                assert_identical(name, threads, &serial, &parallel);
            }
        }
    }

    /// The intra-candidate bucket fan-out (forced on by an eval threshold
    /// of 1) is bit-identical too.  The two fan-out axes are exclusive by
    /// design — bucket parallelism only engages when the level fan-out
    /// does not — so the level gate is left closed (`fanout_threshold`
    /// maxed) to actually reach the bucket path.
    #[test]
    fn bucket_fanout_is_byte_identical(
        seed in 0u64..4000,
        n in 3usize..5,
        center in 60.0f64..2500.0,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, 0.6, 5).unwrap();
        let serial_model = CostModel::new(&cat, &q);
        let serial = optimize_lec_static_with(&serial_model, &memory, &SearchConfig::serial()).unwrap();
        for threads in [2usize, 4] {
            let cfg = SearchConfig {
                threads,
                fanout_threshold: usize::MAX,
                bucket_evals_threshold: 1,
                ..Default::default()
            };
            let par_model = CostModel::new(&cat, &q);
            let parallel = optimize_lec_static_with(&par_model, &memory, &cfg).unwrap();
            assert_identical("alg_c+buckets", threads, &serial, &parallel);
            let d_serial_model = CostModel::new(&cat, &q);
            let d_serial = optimize_alg_d_with(
                &d_serial_model, &memory, &AlgDConfig::default(), &SearchConfig::serial(),
            ).unwrap();
            let d_model = CostModel::new(&cat, &q);
            let d_parallel = optimize_alg_d_with(
                &d_model, &memory, &AlgDConfig::default(), &cfg,
            ).unwrap();
            assert_identical("alg_d+buckets", threads, &d_serial, &d_parallel);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The subplan memo must be invisible in outcomes: for every
    /// memo-eligible policy, a memo-assisted search — cold or warm, serial
    /// or fanned out across 4 threads — returns a `SearchOutcome`
    /// byte-identical to the memo-free serial engine's (plan, cost bits,
    /// `evals`, `cache_hits`, `candidates`, `nodes`), and warm repeats
    /// actually hit.  Ineligible policies (top-c, exhaustive) ride along
    /// to pin that they bypass the memo unchanged.
    #[test]
    fn subplan_memo_searches_are_byte_identical(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        use lec_core::search::SubplanMemo;
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();

        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let memory2 = memory.clone();
        let memory3 = memory.clone();
        let memory4 = memory.clone();
        let memory5 = memory.clone();
        let memory6 = memory.clone();
        let memory7 = memory.clone();
        let chain2 = chain.clone();
        // (name, runner, memo-eligible?)
        let runners: Vec<(&str, Box<Runner>, bool)> = vec![
            ("lsc", Box::new(move |m, c| optimize_lsc_with(m, memory2.mean(), c)), true),
            ("alg_c", Box::new(move |m, c| optimize_lec_static_with(m, &memory3, c)), true),
            ("alg_c_dyn", Box::new(move |m, c| optimize_lec_dynamic_with(m, &memory4, &chain2, c)), true),
            ("alg_d", Box::new(move |m, c| optimize_alg_d_with(m, &memory5, &AlgDConfig::default(), c)), true),
            ("bushy", Box::new(move |m, c| optimize_lec_bushy_with(m, &memory6, c)), true),
            ("alg_b", Box::new(move |m, c| optimize_alg_b_with(m, &memory7, 3, c)), false),
            ("exhaustive", Box::new(move |m, c| exhaustive_best_with(m, &Objective::Expected(&memory), c)), false),
        ];

        for (name, run, eligible) in &runners {
            let baseline_model = CostModel::new(&cat, &q);
            let baseline = run(&baseline_model, &SearchConfig::serial()).unwrap();

            let memo = Arc::new(SubplanMemo::default());
            // Pass 1 (cold, serial), pass 2 (warm, serial), pass 3 (warm,
            // forced 4-thread fan-out, same shared memo).
            let serial_memo = SearchConfig::serial().with_memo(Arc::clone(&memo));
            let par_memo = forced(4).with_memo(Arc::clone(&memo));
            for (pass, cfg) in [&serial_memo, &serial_memo, &par_memo].into_iter().enumerate() {
                let model = CostModel::new(&cat, &q);
                let out = run(&model, cfg).unwrap();
                assert_identical(&format!("{name}+memo(pass {pass})"), 1, &baseline, &out);
                if *eligible && pass > 0 {
                    prop_assert!(out.stats.memo_hits > 0,
                        "{}: warm pass {} must hit the memo", name, pass);
                }
                if !*eligible {
                    prop_assert_eq!(out.stats.memo_hits + out.stats.memo_misses, 0,
                        "{}: ineligible policy must bypass the memo", name);
                }
            }
            if *eligible {
                prop_assert!(!memo.is_empty(), "{}: eligible searches must populate", name);
            }
        }
    }

    /// One memo shared by searches under *different* memory beliefs (and
    /// different costers) must never cross-contaminate: the environment
    /// fingerprint keys them apart, and every answer stays byte-identical
    /// to its own memo-free baseline.
    #[test]
    fn shared_memo_isolates_different_environments(
        seed in 0u64..4000,
        n in 3usize..6,
        center in 80.0f64..2000.0,
    ) {
        use lec_core::search::SubplanMemo;
        let (cat, q) = workload(seed, n);
        let mem_a = presets::spread_family(center, 0.5, 4).unwrap();
        let mem_b = presets::spread_family(center * 1.7, 0.3, 5).unwrap();
        let memo = Arc::new(SubplanMemo::default());
        let cfg = SearchConfig::serial().with_memo(Arc::clone(&memo));
        // Interleave the two environments twice so each one's second pass
        // runs against a memo already full of the *other* environment.
        for _ in 0..2 {
            for memory in [&mem_a, &mem_b] {
                let base_model = CostModel::new(&cat, &q);
                let base = optimize_lec_static_with(&base_model, memory, &SearchConfig::serial()).unwrap();
                let model = CostModel::new(&cat, &q);
                let out = optimize_lec_static_with(&model, memory, &cfg).unwrap();
                assert_identical("alg_c+shared-memo", 1, &base, &out);

                let d_base_model = CostModel::new(&cat, &q);
                let d_base = optimize_alg_d_with(
                    &d_base_model, memory, &AlgDConfig::default(), &SearchConfig::serial()).unwrap();
                let d_model = CostModel::new(&cat, &q);
                let d_out = optimize_alg_d_with(&d_model, memory, &AlgDConfig::default(), &cfg).unwrap();
                assert_identical("alg_d+shared-memo", 1, &d_base, &d_out);
            }
        }
    }
}

/// Cross-query partial reuse: two overlapping chain windows share every
/// subchain of their 5-table intersection, so the second query's search
/// must hit exactly those nodes — and still be byte-identical to its
/// memo-free baseline.
#[test]
fn overlapping_queries_share_subplan_nodes() {
    use lec_core::search::SubplanMemo;
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};

    let mut cat = lec_catalog::Catalog::new();
    let ids: Vec<_> = (0..7)
        .map(|i| {
            cat.add_table(
                format!("W{i}"),
                lec_catalog::TableStats::new(
                    900 * (i as u64 + 1),
                    40_000 * (i as u64 + 2),
                    vec![
                        lec_catalog::ColumnStats::plain("a", 50 + i as u64),
                        lec_catalog::ColumnStats::plain("b", 90 + i as u64),
                    ],
                ),
            )
        })
        .collect();
    let chain_query = |lo: usize, hi: usize| Query {
        tables: ids[lo..hi].iter().map(|&t| QueryTable::bare(t)).collect(),
        joins: (0..hi - lo - 1)
            .map(|i| {
                JoinPredicate::exact(
                    ColumnRef::new(i, 1),
                    ColumnRef::new(i + 1, 0),
                    1e-5 * (lo + i + 1) as f64,
                )
            })
            .collect(),
        required_order: None,
    };
    let qa = chain_query(0, 6);
    let qb = chain_query(1, 7);
    let memory = presets::spread_family(500.0, 0.6, 4).unwrap();
    let memo = Arc::new(SubplanMemo::default());
    let cfg = SearchConfig::serial().with_memo(Arc::clone(&memo));

    let model_a = CostModel::new(&cat, &qa);
    let _ = optimize_lec_static_with(&model_a, &memory, &cfg).unwrap();

    let base_model = CostModel::new(&cat, &qb);
    let base = optimize_lec_static_with(&base_model, &memory, &SearchConfig::serial()).unwrap();
    let model_b = CostModel::new(&cat, &qb);
    let out = optimize_lec_static_with(&model_b, &memory, &cfg).unwrap();
    assert_identical("overlap", 1, &base, &out);
    // The 5-table intersection contributes 4+3+2+1 = 10 shared connected
    // subchains plus its 5 singleton access-path nodes; the 5 subchains
    // and 1 singleton touching the new endpoint are fresh.
    assert_eq!(
        out.stats.memo_hits, 15,
        "every shared subchain and singleton must hit"
    );
    assert_eq!(out.stats.memo_misses, 6, "every fresh node must miss");
}

/// Twin tables distinguished only *outside* a sub-subset: the body of
/// {hub, s1, s2, x} is asymmetric (x pins s1), but its child {hub, s1,
/// s2} is automorphic and tie-breaks by arrival order.  Memoizing the
/// root would carry that label-dependent choice across isomorphic
/// queries; the twin refusal keeps every such node out of the memo, so a
/// shared memo stays byte-identical across the relabeling.
#[test]
fn globally_distinguished_twins_stay_byte_identical_under_a_shared_memo() {
    use lec_core::search::SubplanMemo;
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};

    let mut cat = lec_catalog::Catalog::new();
    let hub = cat.add_table(
        "hub",
        lec_catalog::TableStats::new(
            50_000,
            2_500_000,
            vec![lec_catalog::ColumnStats::plain("a", 100)],
        ),
    );
    let spoke = || {
        lec_catalog::TableStats::new(
            1000,
            50_000,
            vec![lec_catalog::ColumnStats::plain("a", 100)],
        )
    };
    let s1 = cat.add_table("s1", spoke());
    let s2 = cat.add_table("s2", spoke());
    let x = cat.add_table(
        "x",
        lec_catalog::TableStats::new(
            7000,
            300_000,
            vec![lec_catalog::ColumnStats::plain("a", 100)],
        ),
    );
    let q = Query {
        tables: [hub, s1, s2, x].into_iter().map(QueryTable::bare).collect(),
        joins: vec![
            JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(1, 0), 1e-5),
            JoinPredicate::exact(ColumnRef::new(0, 0), ColumnRef::new(2, 0), 1e-5),
            JoinPredicate::exact(ColumnRef::new(1, 0), ColumnRef::new(3, 0), 1e-4),
        ],
        required_order: None,
    };
    let q2 = q.relabel_tables(&[0, 2, 1, 3]); // swap the twins
    let memory = presets::spread_family(500.0, 0.6, 4).unwrap();

    let memo = Arc::new(SubplanMemo::default());
    let cfg = SearchConfig::serial().with_memo(Arc::clone(&memo));
    for query in [&q, &q2, &q, &q2] {
        let base_model = CostModel::new(&cat, query);
        let base = optimize_lec_static_with(&base_model, &memory, &SearchConfig::serial()).unwrap();
        let model = CostModel::new(&cat, query);
        let out = optimize_lec_static_with(&model, &memory, &cfg).unwrap();
        assert_identical("twin-fixture", 1, &base, &out);
        // Nodes containing both twins must never be served from the memo;
        // singleton nodes hold one table and are always eligible — the
        // twin spokes even share one singleton record (their occurrence
        // fingerprints are equal, and a one-member subset has no pair to
        // refuse), which is sound because a depth-1 node is a pure
        // function of that fingerprint.
        assert_eq!(
            out.stats.memo_hits + out.stats.memo_misses,
            8,
            "4 twin-free composite subsets + 4 singleton nodes"
        );
    }
}

/// The persistent cross-search pool must be invisible in outcomes: for
/// every policy, a search whose workers come from long-lived parked
/// threads is byte-identical to the serial driver at 2, 4 and 8 threads —
/// and one pool serves many searches (and many thread counts) in a row.
#[test]
fn persistent_pool_searches_are_byte_identical_to_serial() {
    let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::new(8));
    let memory = presets::spread_family(600.0, 0.6, 4).unwrap();
    let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();
    for seed in [3u64, 17, 101] {
        let (cat, q) = workload(seed, 5);
        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let runners: Vec<(&str, Box<Runner>)> = vec![
            ("alg_c", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_lec_static_with(model, &m, c))
            }),
            ("alg_c_dyn", {
                let (m, ch) = (memory.clone(), chain.clone());
                Box::new(move |model, c| optimize_lec_dynamic_with(model, &m, &ch, c))
            }),
            ("alg_d", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_alg_d_with(model, &m, &AlgDConfig::default(), c))
            }),
            ("bushy", {
                let m = memory.clone();
                Box::new(move |model, c| optimize_lec_bushy_with(model, &m, c))
            }),
        ];
        for (name, run) in &runners {
            let serial_model = CostModel::new(&cat, &q);
            let serial = run(&serial_model, &SearchConfig::serial()).unwrap();
            for threads in [2usize, 4, 8] {
                let cfg = SearchConfig {
                    pool: Some(Arc::clone(&pool)),
                    ..forced(threads)
                };
                let par_model = CostModel::new(&cat, &q);
                let parallel = run(&par_model, &cfg).unwrap();
                assert_identical(&format!("{name}+pool"), threads, &serial, &parallel);
            }
        }
    }
}

/// A panicking search through the persistent pool surfaces as
/// `WorkerPanicked` and leaves the pool healthy for the next search.
#[test]
fn persistent_pool_survives_a_poisoned_search() {
    use lec_core::search::{run_search_with, KeepBestPolicy, PlanShape};
    let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::new(4));
    let (cat, q) = lec_core::fixtures::scaling_chain(5);
    let model = CostModel::new(&cat, &q);
    let cfg = SearchConfig {
        pool: Some(Arc::clone(&pool)),
        ..forced(4)
    };
    let mut policy = KeepBestPolicy::new(PoisonedCoster);
    let res = run_search_with(&model, PlanShape::LeftDeep, &mut policy, &cfg);
    assert!(matches!(res, Err(OptError::WorkerPanicked)), "got {res:?}");
    // The same pool then answers a healthy parallel search, byte-identical
    // to serial.
    let memory = presets::spread_family(400.0, 0.5, 4).unwrap();
    let healthy_model = CostModel::new(&cat, &q);
    let healthy = optimize_lec_static_with(&healthy_model, &memory, &cfg).unwrap();
    let serial_model = CostModel::new(&cat, &q);
    let serial = optimize_lec_static_with(&serial_model, &memory, &SearchConfig::serial()).unwrap();
    assert_identical("healthy-after-poison", 4, &serial, &healthy);
}

/// A coster that panics when it sees a composite join — always on a
/// worker thread once the fan-out is forced on.
#[derive(Debug, Clone)]
struct PoisonedCoster;

impl PhaseCoster for PoisonedCoster {
    fn join_cost(
        &self,
        _model: &CostModel<'_>,
        _ctx: &lec_core::search::JoinContext,
        _method: lec_plan::JoinMethod,
        _outer: f64,
        _inner: f64,
    ) -> f64 {
        panic!("poisoned shard: the coster blew up mid-combine")
    }

    fn sort_cost(
        &self,
        _model: &CostModel<'_>,
        _set: lec_plan::TableSet,
        _phase: usize,
        _pages: f64,
    ) -> f64 {
        panic!("poisoned shard: the coster blew up mid-sort")
    }
}

#[test]
fn panicking_coster_propagates_as_error_not_deadlock() {
    use lec_core::search::{run_search_with, KeepBestPolicy, PlanShape};
    let (cat, q) = lec_core::fixtures::scaling_chain(5);
    let model = CostModel::new(&cat, &q);
    for threads in [2usize, 4, 8] {
        let mut policy = KeepBestPolicy::new(PoisonedCoster);
        let res = run_search_with(&model, PlanShape::LeftDeep, &mut policy, &forced(threads));
        assert!(
            matches!(res, Err(OptError::WorkerPanicked)),
            "threads={threads}: expected WorkerPanicked, got {res:?}"
        );
    }
    // The shard mutexes recover from the poisoned compute: the same model
    // still answers a healthy search afterwards.
    let healthy = lec_core::optimize_lsc(&model, 400.0).unwrap();
    assert!(healthy.cost > 0.0);
}

#[test]
fn workaware_gate_keeps_sparse_chains_serial() {
    // An 8-table chain has C(8,4) = 70 subsets at its widest level but
    // only 5 connected ones — under the default threshold it must stay
    // serial; a 10-table star (C(9,4) = 126 connected mid-level subsets)
    // must fan out.
    let (_, chain) = lec_core::fixtures::scaling_chain(8);
    let (_, star) = lec_core::fixtures::scaling_star(10);
    let cfg = SearchConfig::with_threads(4);
    assert!(!cfg.fans_out(&chain), "sparse chain must stay serial");
    assert!(cfg.fans_out(&star), "wide star must fan out");
    assert!(!SearchConfig::serial().fans_out(&star));
    // Exclusive axes: when the level fan-out engages, bucket parallelism
    // is off; when it doesn't, bucket parallelism carries the threads.
    assert_eq!(cfg.bucket_parallelism_for(&star).threads, 1);
    assert_eq!(cfg.bucket_parallelism_for(&chain).threads, 4);
}

#[test]
fn serial_config_takes_the_serial_path() {
    // threads = 1 must behave exactly like run_search: same result type,
    // no worker machinery (observable via WorkerPanicked never appearing
    // for a healthy policy, and identical outcomes).
    let (cat, q) = lec_core::fixtures::three_chain();
    let model = CostModel::new(&cat, &q);
    let memory = presets::spread_family(400.0, 0.6, 4).unwrap();
    let a = lec_core::optimize_lec_static(&model, &memory).unwrap();
    let model2 = CostModel::new(&cat, &q);
    let b = optimize_lec_static_with(&model2, &memory, &SearchConfig::serial()).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert!(SearchConfig::serial().effective_threads() == 1);
    assert!(SearchConfig::with_threads(7).effective_threads() == 7);
    assert!(SearchConfig::default().effective_threads() >= 1);
}

// ---------------------------------------------------------------------
// Bound-based pruning: answers, schedule independence, admissibility.
// ---------------------------------------------------------------------

/// Every subtree's table set in `plan` (composite and singleton alike).
fn subtree_sets(plan: &lec_plan::PlanNode, out: &mut Vec<lec_plan::TableSet>) {
    use lec_plan::PlanNode;
    match plan {
        PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => {}
        PlanNode::Sort { input, .. } => subtree_sets(input, out),
        PlanNode::Join { outer, inner, .. } => {
            subtree_sets(outer, out);
            subtree_sets(inner, out);
        }
    }
    out.push(plan.tables());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Branch-and-bound pruning must be invisible in answers: for every
    /// prune-eligible policy (and the streaming keep-all verifier), the
    /// pruned search returns the same plan and the same cost bits as the
    /// unpruned one — serially and fanned out.  Work counters may differ
    /// (that is the point of pruning); the answer may not.
    #[test]
    fn pruned_searches_return_byte_identical_answers(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();

        type Runner = dyn Fn(&CostModel<'_>, &SearchConfig) -> Result<SearchOutcome, OptError>;
        let memory2 = memory.clone();
        let memory3 = memory.clone();
        let memory4 = memory.clone();
        let memory5 = memory.clone();
        let memory6 = memory.clone();
        let runners: Vec<(&str, Box<Runner>)> = vec![
            ("lsc", Box::new(move |m, c| optimize_lsc_with(m, memory2.mean(), c))),
            ("alg_c", Box::new(move |m, c| optimize_lec_static_with(m, &memory3, c))),
            ("alg_c_dyn", Box::new(move |m, c| optimize_lec_dynamic_with(m, &memory4, &chain, c))),
            ("alg_d", Box::new(move |m, c| optimize_alg_d_with(m, &memory5, &AlgDConfig::default(), c))),
            ("bushy", Box::new(move |m, c| optimize_lec_bushy_with(m, &memory6, c))),
            ("exhaustive", Box::new(move |m, c| exhaustive_best_with(m, &Objective::Expected(&memory), c))),
        ];

        for (name, run) in &runners {
            let base_model = CostModel::new(&cat, &q);
            let base = run(&base_model, &SearchConfig::serial()).unwrap();
            let configs = [
                SearchConfig::serial().with_pruning(true),
                forced(2).with_pruning(true),
                forced(4).with_pruning(true),
            ];
            for (i, cfg) in configs.iter().enumerate() {
                let model = CostModel::new(&cat, &q);
                let out = run(&model, cfg).unwrap();
                prop_assert_eq!(&base.plan, &out.plan, "{} cfg {}: plan drift", name, i);
                prop_assert_eq!(
                    base.cost.to_bits(), out.cost.to_bits(),
                    "{} cfg {}: cost drift ({} vs {})", name, i, base.cost, out.cost
                );
            }
        }
    }

    /// A pruned search's counters are part of the determinism contract
    /// *between schedules*: pruned serial and pruned parallel agree on
    /// every counter — `pruned_subsets` included — because the incumbent
    /// only tightens at level barriers, never mid-level.
    #[test]
    fn pruned_stats_are_schedule_independent(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
    ) {
        let memory = presets::spread_family(center, 0.5, 4).unwrap();
        let (cat, q) = workload(seed, n);
        let serial_model = CostModel::new(&cat, &q);
        let serial = optimize_lec_static_with(
            &serial_model, &memory, &SearchConfig::serial().with_pruning(true),
        ).unwrap();
        for threads in [2usize, 4] {
            let model = CostModel::new(&cat, &q);
            let par = optimize_lec_static_with(
                &model, &memory, &forced(threads).with_pruning(true),
            ).unwrap();
            assert_identical("alg_c+pruning", threads, &serial, &par);
            prop_assert_eq!(
                serial.stats.pruned_subsets, par.stats.pruned_subsets,
                "pruned_subsets must be schedule-independent"
            );
            prop_assert_eq!(
                serial.stats.bound_evals, par.stats.bound_evals,
                "bound_evals must be schedule-independent (no memo installed)"
            );
            prop_assert_eq!(
                serial.stats.sharp_bound_evals, par.stats.sharp_bound_evals,
                "sharp_bound_evals must be schedule-independent"
            );
            prop_assert_eq!(
                serial.stats.cheap_bound_skips, par.stats.cheap_bound_skips,
                "cheap_bound_skips must be schedule-independent"
            );
        }
    }

    /// Tentpole admissibility, at the per-edge layer: every
    /// [`EdgeBound`]'s intermediate-size floor is at or below the
    /// *realized* output size of that base join under **every** memory
    /// bucket of the operand-size and selectivity distributions and both
    /// operand orders — the invariant that makes the sharp subset floor
    /// safe.  The tiered counters the sharp layer feeds are then pinned
    /// schedule-independent at 1, 2 and 4 threads.
    #[test]
    fn per_edge_size_bounds_are_admissible(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        use lec_core::search::{PlanShape, PruneState, StaticExpectationCoster};
        use lec_cost::formulas::MIN_PAGES;
        use lec_plan::TableSet;

        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let model = CostModel::new(&cat, &q);
        let bound = StaticExpectationCoster::new(&memory)
            .pruning_bound()
            .expect("alg_c is prune-eligible");
        let ps = PruneState::new(&model, PlanShape::LeftDeep, bound, vec![0.0; n]);

        for eb in ps.edge_bounds() {
            for order in [(eb.u, eb.v), (eb.v, eb.u)] {
                let (x, y) = order;
                let px = model.base_pages_dist(x);
                let py = model.base_pages_dist(y);
                let sel = model.join_selectivity_dist_sets(
                    TableSet::singleton(x),
                    TableSet::singleton(y),
                );
                for &pxv in px.support() {
                    for &pyv in py.support() {
                        for &sv in sel.support() {
                            let realized = (pxv * pyv * sv).max(MIN_PAGES);
                            prop_assert!(
                                eb.size_floor <= realized + 1e-9,
                                "edge ({},{}): size floor {} exceeds realized {} \
                                 (pages {}x{}, sel {})",
                                eb.u, eb.v, eb.size_floor, realized, pxv, pyv, sv
                            );
                        }
                    }
                }
            }
        }

        // The sharp layer's counters are schedule-independent.
        let serial_model = CostModel::new(&cat, &q);
        let serial = optimize_lec_static_with(
            &serial_model, &memory, &SearchConfig::serial().with_pruning(true),
        ).unwrap();
        for threads in [2usize, 4] {
            let par_model = CostModel::new(&cat, &q);
            let par = optimize_lec_static_with(
                &par_model, &memory, &forced(threads).with_pruning(true),
            ).unwrap();
            prop_assert_eq!(serial.stats.sharp_bound_evals, par.stats.sharp_bound_evals);
            prop_assert_eq!(serial.stats.cheap_bound_skips, par.stats.cheap_bound_skips);
            prop_assert_eq!(serial.stats.pruned_subsets, par.stats.pruned_subsets);
        }
    }

    /// Admissibility, checked against ground truth: every subtree of the
    /// plan a policy actually chose must survive its own bound —
    /// `subset_floor(S) <= cost` for every subtree set `S` of the chosen
    /// plan.  (A violation is exactly the failure that would make pruning
    /// discard the optimal plan.)
    #[test]
    fn bounds_are_admissible_on_the_chosen_plans(
        seed in 0u64..4000,
        n in 3usize..7,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        use lec_core::search::{
            DynamicExpectationCoster, PointCoster, PruneState, StaticExpectationCoster,
        };
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let chain = MarkovChain::birth_death(memory.support().to_vec(), 0.3, 0.1).unwrap();
        let model = CostModel::new(&cat, &q);

        type Case = (
            &'static str,
            Option<Box<dyn lec_core::search::LowerBound>>,
            SearchOutcome,
        );
        let cases: Vec<Case> = vec![
            (
                "lsc",
                PointCoster { memory: memory.mean() }.pruning_bound(),
                optimize_lsc_with(&model, memory.mean(), &SearchConfig::serial()).unwrap(),
            ),
            (
                "alg_c",
                StaticExpectationCoster::new(&memory).pruning_bound(),
                optimize_lec_static_with(&model, &memory, &SearchConfig::serial()).unwrap(),
            ),
            (
                "alg_c_dyn",
                DynamicExpectationCoster::new(&memory, &chain, n).unwrap().pruning_bound(),
                optimize_lec_dynamic_with(&model, &memory, &chain, &SearchConfig::serial()).unwrap(),
            ),
        ];
        for (name, bound, outcome) in cases {
            // Zero access floors keep the state admissible a fortiori;
            // the size product and join floors are the load-bearing part.
            let ps = PruneState::new(
                &model,
                lec_core::search::PlanShape::LeftDeep,
                bound.expect("coster is prune-eligible"),
                vec![0.0; n],
            );
            let mut sets = Vec::new();
            subtree_sets(&outcome.plan, &mut sets);
            for set in sets {
                let pages = ps.bound().pages_floor(&model, set);
                let floor = ps.subset_floor(set, pages);
                prop_assert!(
                    floor <= outcome.cost + 1e-6,
                    "{}: subtree {:?} floor {} exceeds the chosen plan's cost {}",
                    name, set, floor, outcome.cost
                );
            }
        }
    }
}

/// The pruning fixtures actually prune — and whatever they discard, the
/// answer, the counters, and the schedule-independence contract all hold,
/// against both the unpruned search and across thread counts.
#[test]
fn pruning_fixtures_prune_without_changing_answers() {
    let memory = presets::spread_family(400.0, 0.5, 4).unwrap();
    for (cat, q) in [
        lec_core::fixtures::pruning_chain(9),
        lec_core::fixtures::pruning_star(10),
    ] {
        let base_model = CostModel::new(&cat, &q);
        let base = optimize_lec_static_with(&base_model, &memory, &SearchConfig::serial()).unwrap();
        let serial_model = CostModel::new(&cat, &q);
        let serial = optimize_lec_static_with(
            &serial_model,
            &memory,
            &SearchConfig::serial().with_pruning(true),
        )
        .unwrap();
        assert!(
            serial.stats.pruned_subsets > 0,
            "the fixture must actually trigger pruning"
        );
        assert_eq!(base.plan, serial.plan, "pruning changed the plan");
        assert_eq!(
            base.cost.to_bits(),
            serial.cost.to_bits(),
            "pruning changed the cost"
        );
        for threads in [2usize, 4] {
            let model = CostModel::new(&cat, &q);
            let par =
                optimize_lec_static_with(&model, &memory, &forced(threads).with_pruning(true))
                    .unwrap();
            assert_identical("pruning-fixture", threads, &serial, &par);
            assert_eq!(serial.stats.pruned_subsets, par.stats.pruned_subsets);
            assert_eq!(serial.stats.bound_evals, par.stats.bound_evals);
            assert_eq!(serial.stats.sharp_bound_evals, par.stats.sharp_bound_evals);
            assert_eq!(serial.stats.cheap_bound_skips, par.stats.cheap_bound_skips);
        }
    }
}
