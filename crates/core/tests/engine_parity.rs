//! Engine-parity properties: every policy plugged into the shared search
//! engine must agree with the keep-all (exhaustive) policy on randomized
//! 3–5 table fixtures, across seeds — in objective value always, and in
//! the plan bytes whenever the optimum is unique.  Also pins the
//! degeneracies the paper implies: Algorithm B at `c = 1` collapses to
//! Algorithm A, and with `c` large enough to hold every candidate list it
//! collapses to Algorithm C; and the memoized evaluation cache never
//! changes any answer, only the evaluation count.

use lec_core::search::{
    run_search, KeepAllPolicy, PlanShape, PointCoster, StaticExpectationCoster,
};
use lec_core::{
    exhaustive_best, exhaustive_best_shaped, optimize_alg_a, optimize_alg_b, optimize_alg_d,
    optimize_lec_bushy, optimize_lec_dynamic, optimize_lec_static, optimize_lsc, AlgDConfig,
    Objective,
};
use lec_cost::CostModel;
use lec_plan::{PlanNode, Query, QueryProfile, Topology, WorkloadGenerator};
use lec_prob::{presets, Distribution, MarkovChain};
use proptest::prelude::*;

fn workload(seed: u64, n: usize) -> (lec_catalog::Catalog, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xBEEF);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology: Topology::Random,
            ..Default::default()
        },
    );
    (cat, q)
}

fn rel_eq(a: f64, b: f64) -> bool {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0) < 1e-9
}

/// When the optimum over `shape` × `objective` is unique (no other plan
/// within relative 1e-6), return it for byte-identity checks.
fn unique_optimum(
    model: &CostModel<'_>,
    memory: Option<&Distribution>,
    point: Option<f64>,
    shape: PlanShape,
) -> Option<(PlanNode, f64)> {
    let run = match (memory, point) {
        (Some(d), None) => run_search(
            model,
            shape,
            &mut KeepAllPolicy::new(StaticExpectationCoster::new(d)),
        ),
        (None, Some(m)) => run_search(
            model,
            shape,
            &mut KeepAllPolicy::new(PointCoster { memory: m }),
        ),
        _ => unreachable!("exactly one objective"),
    }
    .expect("keep-all search succeeds on generated workloads");
    let best = run.best().clone();
    let near = run
        .roots
        .iter()
        .filter(|e| {
            use lec_core::search::SearchEntry;
            (e.cost() - best.cost).abs() / best.cost.max(1.0) < 1e-6
        })
        .count();
    (near == 1).then_some((best.plan, best.cost))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 2.1 through the engine: the point policy equals the
    /// keep-all policy, bytes included when unique.
    #[test]
    fn lsc_matches_exhaustive(seed in 0u64..4000, n in 3usize..6, mem in 20.0f64..4000.0) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let dp = optimize_lsc(&model, mem).unwrap();
        let ex = exhaustive_best(&model, &Objective::Point(mem)).unwrap();
        prop_assert!(rel_eq(dp.cost, ex.cost), "dp {} vs exhaustive {}", dp.cost, ex.cost);
        if let Some((plan, _)) = unique_optimum(&model, None, Some(mem), PlanShape::LeftDeep) {
            prop_assert_eq!(&dp.plan, &plan, "unique optimum must match byte-for-byte");
        }
    }

    /// Theorem 3.3 through the engine, same byte-identity contract.
    #[test]
    fn alg_c_matches_exhaustive(
        seed in 0u64..4000,
        n in 3usize..6,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
        b in 2usize..6,
    ) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, spread, b).unwrap();
        let dp = optimize_lec_static(&model, &memory).unwrap();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        prop_assert!(rel_eq(dp.cost, ex.cost), "dp {} vs exhaustive {}", dp.cost, ex.cost);
        if let Some((plan, _)) = unique_optimum(&model, Some(&memory), None, PlanShape::LeftDeep) {
            prop_assert_eq!(&dp.plan, &plan);
        }
    }

    /// Theorem 3.4 (dynamic memory) through the engine.
    #[test]
    fn dynamic_alg_c_matches_exhaustive(
        seed in 0u64..4000,
        n in 3usize..6,
        p_down in 0.05f64..0.4,
        p_up in 0.05f64..0.4,
    ) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let states = vec![80.0, 320.0, 1280.0];
        let chain = MarkovChain::birth_death(states, p_down, p_up).unwrap();
        let initial = Distribution::bimodal(320.0, 1280.0, 0.5).unwrap();
        let dp = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let ex = exhaustive_best(
            &model,
            &Objective::Dynamic { initial: &initial, chain: &chain },
        )
        .unwrap();
        prop_assert!(rel_eq(dp.cost, ex.cost), "dp {} vs exhaustive {}", dp.cost, ex.cost);
    }

    /// The §4 bushy policy equals keep-all over the bushy space.
    #[test]
    fn bushy_matches_bushy_exhaustive(
        seed in 0u64..4000,
        n in 3usize..6,
        center in 60.0f64..2500.0,
    ) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        // Dense bushy spaces can exceed the keep-all verifier's 1M-plan
        // cap; skip those cases rather than materialize them.
        if lec_core::search::plan_space_size(&model, PlanShape::Bushy)
            > lec_core::MAX_EXHAUSTIVE_PLANS
        {
            return Ok(());
        }
        let memory = presets::spread_family(center, 0.6, 4).unwrap();
        let dp = optimize_lec_bushy(&model, &memory).unwrap();
        let ex = exhaustive_best_shaped(&model, &Objective::Expected(&memory), PlanShape::Bushy)
            .unwrap();
        prop_assert!(rel_eq(dp.cost, ex.cost), "dp {} vs exhaustive {}", dp.cost, ex.cost);
        if let Some((plan, _)) = unique_optimum(&model, Some(&memory), None, PlanShape::Bushy) {
            prop_assert_eq!(&dp.plan, &plan);
        }
    }

    /// With certain sizes and selectivities (the generator's default),
    /// Algorithm D's distribution bookkeeping degenerates to Algorithm C
    /// and therefore to the exhaustive optimum.
    #[test]
    fn alg_d_point_sizes_match_exhaustive(
        seed in 0u64..4000,
        n in 3usize..6,
        center in 60.0f64..2500.0,
        b in 2usize..6,
    ) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, 0.5, b).unwrap();
        let d = optimize_alg_d(&model, &memory, &AlgDConfig::default()).unwrap();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        prop_assert!(rel_eq(d.cost, ex.cost), "D {} vs exhaustive {}", d.cost, ex.cost);
        if let Some((plan, _)) = unique_optimum(&model, Some(&memory), None, PlanShape::LeftDeep) {
            prop_assert_eq!(&d.plan, &plan);
        }
    }

    /// Algorithm B degeneracies: at c = 1 the per-representative top-1
    /// list *is* the LSC plan, so B collapses to Algorithm A; with c
    /// large enough to never truncate a (subset, order) list on a 3-table
    /// query, B's candidate set is the whole space, so B collapses to
    /// Algorithm C (and hence the exhaustive optimum).
    #[test]
    fn alg_b_degeneracies(
        seed in 0u64..4000,
        center in 60.0f64..2500.0,
        spread in 0.1f64..0.9,
    ) {
        let (cat, q) = workload(seed, 3);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, spread, 4).unwrap();
        let a = optimize_alg_a(&model, &memory).unwrap();
        let b1 = optimize_alg_b(&model, &memory, 1).unwrap();
        prop_assert!(rel_eq(a.cost, b1.cost), "B(1) {} vs A {}", b1.cost, a.cost);
        let b_all = optimize_alg_b(&model, &memory, 256).unwrap();
        let c = optimize_lec_static(&model, &memory).unwrap();
        prop_assert!(rel_eq(b_all.cost, c.cost), "B(256) {} vs C {}", b_all.cost, c.cost);
    }

    /// The memoized evaluation cache changes evaluation counts, never
    /// answers: every policy returns byte-identical plans and costs with
    /// the cache disabled.
    #[test]
    fn cache_is_transparent_for_every_policy(
        seed in 0u64..4000,
        n in 3usize..5,
        center in 60.0f64..2500.0,
    ) {
        let (cat, q) = workload(seed, n);
        let memory = presets::spread_family(center, 0.6, 4).unwrap();
        let cached_model = CostModel::new(&cat, &q);
        let raw_model = CostModel::new(&cat, &q);
        raw_model.set_eval_cache(false);
        macro_rules! check {
            ($name:literal, $f:expr) => {{
                #[allow(clippy::redundant_closure_call)]
                let on = $f(&cached_model).unwrap();
                #[allow(clippy::redundant_closure_call)]
                let off = $f(&raw_model).unwrap();
                prop_assert_eq!(&on.plan, &off.plan, "{}: plan drift", $name);
                prop_assert_eq!(on.cost.to_bits(), off.cost.to_bits(), "{}: cost drift", $name);
            }};
        }
        check!("lsc", |m: &CostModel<'_>| optimize_lsc(m, memory.mean()));
        check!("alg_b", |m: &CostModel<'_>| optimize_alg_b(m, &memory, 3));
        check!("alg_c", |m: &CostModel<'_>| optimize_lec_static(m, &memory));
        check!("alg_d", |m: &CostModel<'_>| optimize_alg_d(m, &memory, &AlgDConfig::default()));
        check!("bushy", |m: &CostModel<'_>| optimize_lec_bushy(m, &memory));
    }
}
