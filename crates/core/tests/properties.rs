//! Property tests for the optimizer crate: DP entry pruning, algorithm
//! orderings, bucketing, and the randomized/parametric extensions.

use lec_catalog::CatalogGenerator;
use lec_core::{
    bucketize, optimize_alg_a, optimize_alg_b, optimize_lec_bushy, optimize_lec_static,
    optimize_lsc, BucketStrategy, PlanCache,
};
use lec_cost::{expected_plan_cost_static, CostModel};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_prob::{presets, Distribution};
use proptest::prelude::*;

fn workload(seed: u64, n: usize) -> (lec_catalog::Catalog, Query) {
    let mut g = CatalogGenerator::new(seed);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xBEEF);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology: Topology::Random,
            ..Default::default()
        },
    );
    (cat, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The theorem-grade quality chain on random workloads:
    /// bushy ≤ C ≤ {A, B(c)} and A ≤ EC(LSC plan).
    ///
    /// (A and B are not mutually ordered in general: when several plans tie
    /// on *point* cost at some memory value, A and B may keep different
    /// tied representatives whose *expected* costs differ.)
    #[test]
    fn quality_chain(
        seed in 0u64..5000,
        n in 3usize..6,
        center in 60.0f64..2500.0,
        spread in 0.05f64..0.95,
        c in 2usize..5,
    ) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, spread, 5).unwrap();
        let lsc = optimize_lsc(&model, memory.mean()).unwrap();
        let lsc_ec = expected_plan_cost_static(&model, &lsc.plan, &memory);
        let a = optimize_alg_a(&model, &memory).unwrap();
        let bc = optimize_alg_b(&model, &memory, c).unwrap();
        let cc = optimize_lec_static(&model, &memory).unwrap();
        let bu = optimize_lec_bushy(&model, &memory).unwrap();
        prop_assert!(a.cost <= lsc_ec + 1e-6);
        prop_assert!(cc.cost <= a.cost + 1e-6);
        prop_assert!(cc.cost <= bc.cost + 1e-6);
        prop_assert!(bu.cost <= cc.cost + 1e-6);
    }

    /// Algorithm B's frontier counters never exceed the Prop 3.1 bound.
    #[test]
    fn frontier_bound(seed in 0u64..5000, n in 3usize..6, c in 1usize..12) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(300.0, 0.6, 4).unwrap();
        let b = optimize_alg_b(&model, &memory, c).unwrap();
        prop_assert!(b.frontier().unwrap().combinations_examined <= b.frontier().unwrap().bound_total);
    }

    /// Every bucketing strategy preserves mass and mean on random truths
    /// and never exceeds its budget.
    #[test]
    fn bucketize_budget_and_moments(
        truth_pairs in prop::collection::vec((10.0f64..5000.0, 0.05f64..1.0), 2..40),
        b in 1usize..12,
        strat_idx in 0usize..3,
        cuts in prop::collection::vec(10.0f64..5000.0, 0..6),
    ) {
        let truth = Distribution::from_pairs(truth_pairs).unwrap();
        let strategy = [BucketStrategy::EqualWidth, BucketStrategy::EqualDepth, BucketStrategy::LevelSet][strat_idx];
        let mut sorted_cuts = cuts.clone();
        sorted_cuts.sort_by(f64::total_cmp);
        let d = bucketize(&truth, b, strategy, &sorted_cuts);
        prop_assert!(d.len() <= b.max(truth.len().min(b)));
        let mass: f64 = d.probs().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        let scale = truth.mean().abs().max(1.0);
        prop_assert!((d.mean() - truth.mean()).abs() / scale < 1e-9);
    }

    /// Parametric caches: regret is non-negative and zero when the
    /// start-up distribution was anticipated.
    #[test]
    fn parametric_regret_laws(seed in 0u64..3000, n in 3usize..5) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let anticipated = vec![
            presets::spread_family(150.0, 0.4, 4).unwrap(),
            presets::spread_family(900.0, 0.4, 4).unwrap(),
        ];
        let cache = PlanCache::precompute(&model, &anticipated).unwrap();
        // Anticipated distribution → zero regret.
        let hit = cache.choose(&model, &anticipated[0]).unwrap();
        prop_assert!(hit.regret.abs() < 1e-9);
        // Arbitrary distribution → non-negative regret, best-of-cache.
        let actual = presets::spread_family(400.0, 0.7, 5).unwrap();
        let choice = cache.choose(&model, &actual).unwrap();
        prop_assert!(choice.regret >= 0.0);
        for e in cache.entries() {
            let ec = expected_plan_cost_static(&model, &e.plan, &actual);
            prop_assert!(choice.expected_cost <= ec + 1e-9);
        }
    }

    /// LEC degenerates to LSC on point distributions for every workload.
    #[test]
    fn single_bucket_degeneracy(seed in 0u64..5000, n in 2usize..6, m in 10.0f64..5000.0) {
        let (cat, q) = workload(seed, n);
        let model = CostModel::new(&cat, &q);
        let lsc = optimize_lsc(&model, m).unwrap();
        let lec = optimize_lec_static(&model, &Distribution::point(m)).unwrap();
        prop_assert!((lsc.cost - lec.cost).abs() / lsc.cost.max(1.0) < 1e-9);
    }
}
