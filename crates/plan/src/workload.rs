//! Workload generation: the "realistic queries" of the paper's promised
//! prototype (§4), synthesized.
//!
//! Queries are SPJ blocks over a generated catalog with one of four join
//! topologies.  Selectivities are calibrated from the base-table sizes so
//! that join results stay within a plausible band (pure log-uniform
//! selectivities would make every result either empty or astronomically
//! large, which exercises nothing).  Each selectivity can optionally be
//! *uncertain*: a log-spaced distribution centred on the calibrated value,
//! matching §3.6's treatment of selectivity as a random variable.

use crate::query::{ColumnRef, JoinPredicate, Query, QueryTable};
use lec_catalog::{Catalog, IndexKind, TableId};
use lec_prob::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Join-graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `R0 – R1 – R2 – …` (each joins the next).
    Chain,
    /// `R0` is the hub; every other table joins it.
    Star,
    /// Every pair of tables is joined.
    Clique,
    /// A random connected graph (spanning tree plus random extra edges).
    Random,
}

/// Knobs for query generation.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Join topology.
    pub topology: Topology,
    /// Number of buckets for each uncertain join selectivity (1 = certain).
    pub sel_buckets: usize,
    /// Multiplicative half-width of the selectivity uncertainty band;
    /// each uncertain selectivity ranges over `[σ/f, σ·f]`.
    pub sel_uncertainty_factor: f64,
    /// Probability that a table carries a local filter.
    pub p_filter: f64,
    /// Probability that the query requires sorted output on some join column.
    pub p_required_order: f64,
    /// Result-size target band as a fraction of the smaller input:
    /// join selectivities are drawn so `a·b·σ ∈ [lo·min(a,b), hi·min(a,b)]`.
    pub result_band: (f64, f64),
}

impl Default for QueryProfile {
    fn default() -> Self {
        QueryProfile {
            topology: Topology::Chain,
            sel_buckets: 1,
            sel_uncertainty_factor: 4.0,
            p_filter: 0.3,
            p_required_order: 0.5,
            result_band: (0.01, 1.5),
        }
    }
}

/// Seeded query generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Create a generator with a fixed seed (generation is deterministic).
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate one query over the given tables.
    ///
    /// `tables` are catalog ids; the query's local indices follow their
    /// order here.  Requires `tables.len() >= 2`.
    pub fn gen_query(
        &mut self,
        catalog: &Catalog,
        tables: &[TableId],
        profile: &QueryProfile,
    ) -> Query {
        assert!(tables.len() >= 2, "need at least two tables to join");
        let n = tables.len();

        let mut query_tables: Vec<QueryTable> = Vec::with_capacity(n);
        for &id in tables {
            let t = catalog.table(id);
            let filter = if self.rng.gen::<f64>() < profile.p_filter {
                // Prefer an indexed column so index scans become relevant.
                let col = t
                    .stats
                    .columns
                    .iter()
                    .position(|c| c.index != IndexKind::None)
                    .unwrap_or(0);
                let sel = 10f64.powf(self.rng.gen_range(-2.0..0.0)); // 1%..100%
                Some((col, Distribution::point(sel)))
            } else {
                None
            };
            query_tables.push(match filter {
                Some((col, sel)) => QueryTable::filtered(id, col, sel),
                None => QueryTable::bare(id),
            });
        }

        let edges = self.gen_edges(n, profile.topology);
        let joins = edges
            .into_iter()
            .map(|(a, b)| {
                let pa = self.effective_pages(catalog, &query_tables[a]);
                let pb = self.effective_pages(catalog, &query_tables[b]);
                let sel = self.calibrated_selectivity(pa, pb, profile);
                let ca = self
                    .rng
                    .gen_range(0..catalog.table(tables[a]).stats.columns.len());
                let cb = self
                    .rng
                    .gen_range(0..catalog.table(tables[b]).stats.columns.len());
                JoinPredicate {
                    left: ColumnRef::new(a, ca),
                    right: ColumnRef::new(b, cb),
                    selectivity: sel,
                }
            })
            .collect::<Vec<_>>();

        let required_order = if self.rng.gen::<f64>() < profile.p_required_order {
            let j = &joins[self.rng.gen_range(0..joins.len())];
            Some(if self.rng.gen::<bool>() {
                j.left
            } else {
                j.right
            })
        } else {
            None
        };

        Query {
            tables: query_tables,
            joins,
            required_order,
        }
    }

    /// Expected post-filter page count of a query table (mean over the
    /// filter's selectivity distribution).
    fn effective_pages(&self, catalog: &Catalog, qt: &QueryTable) -> f64 {
        let base = catalog.table(qt.table).stats.pages as f64;
        match &qt.filter {
            Some(f) => (base * f.selectivity.mean()).max(1.0),
            None => base,
        }
    }

    fn gen_edges(&mut self, n: usize, topology: Topology) -> Vec<(usize, usize)> {
        match topology {
            Topology::Chain => (0..n - 1).map(|i| (i, i + 1)).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Clique => {
                let mut e = Vec::new();
                for i in 0..n {
                    for j in i + 1..n {
                        e.push((i, j));
                    }
                }
                e
            }
            Topology::Random => {
                // Random spanning tree (each node attaches to a random
                // earlier node), plus ~n/2 random extra edges.
                let mut e: Vec<(usize, usize)> =
                    (1..n).map(|i| (self.rng.gen_range(0..i), i)).collect();
                let extras = n / 2;
                for _ in 0..extras {
                    let a = self.rng.gen_range(0..n);
                    let b = self.rng.gen_range(0..n);
                    if a != b {
                        let edge = (a.min(b), a.max(b));
                        if !e.contains(&edge) {
                            e.push(edge);
                        }
                    }
                }
                e
            }
        }
    }

    /// Draw a selectivity such that `a·b·σ` lands in the profile's result
    /// band, optionally smeared into an uncertainty distribution.
    fn calibrated_selectivity(
        &mut self,
        a_pages: f64,
        b_pages: f64,
        profile: &QueryProfile,
    ) -> Distribution {
        let small = a_pages.min(b_pages);
        let (lo, hi) = profile.result_band;
        let target = small * 10f64.powf(self.rng.gen_range(lo.log10()..=hi.log10()));
        let sigma = (target / (a_pages * b_pages)).min(1.0);
        if profile.sel_buckets <= 1 {
            return Distribution::point(sigma);
        }
        let f = profile.sel_uncertainty_factor.max(1.0 + 1e-9);
        let lo_s = (sigma / f).max(1e-30);
        let hi_s = (sigma * f).min(1.0);
        lec_prob::presets::selectivity_band(lo_s, hi_s, profile.sel_buckets)
            .expect("calibrated band is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::CatalogGenerator;

    fn setup(n: usize, seed: u64) -> (Catalog, Vec<TableId>) {
        let mut g = CatalogGenerator::new(seed);
        let cat = g.generate(n + 2);
        let ids = g.pick_tables(&cat, n);
        (cat, ids)
    }

    #[test]
    fn generated_queries_validate() {
        for topology in [
            Topology::Chain,
            Topology::Star,
            Topology::Clique,
            Topology::Random,
        ] {
            for seed in 0..10u64 {
                let (cat, ids) = setup(5, seed);
                let mut wg = WorkloadGenerator::new(seed);
                let profile = QueryProfile {
                    topology,
                    ..Default::default()
                };
                let q = wg.gen_query(&cat, &ids, &profile);
                assert_eq!(q.validate(&cat), Ok(()), "{topology:?} seed {seed}");
                assert_eq!(q.n_tables(), 5);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (cat, ids) = setup(4, 9);
        let q1 = WorkloadGenerator::new(77).gen_query(&cat, &ids, &Default::default());
        let q2 = WorkloadGenerator::new(77).gen_query(&cat, &ids, &Default::default());
        assert_eq!(q1, q2);
    }

    #[test]
    fn topology_edge_counts() {
        let (cat, ids) = setup(6, 1);
        let mut wg = WorkloadGenerator::new(5);
        let mut q = |t| {
            let profile = QueryProfile {
                topology: t,
                p_required_order: 0.0,
                ..Default::default()
            };
            wg.gen_query(&cat, &ids, &profile).joins.len()
        };
        assert_eq!(q(Topology::Chain), 5);
        assert_eq!(q(Topology::Star), 5);
        assert_eq!(q(Topology::Clique), 15);
        assert!(q(Topology::Random) >= 5);
    }

    #[test]
    fn uncertain_selectivities_when_requested() {
        let (cat, ids) = setup(3, 2);
        let mut wg = WorkloadGenerator::new(8);
        let profile = QueryProfile {
            sel_buckets: 5,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        assert!(q.has_uncertain_selectivities());
        for j in &q.joins {
            assert!(j.selectivity.len() <= 5);
            assert!(j.selectivity.max_value() <= 1.0);
            assert!(j.selectivity.min_value() > 0.0);
        }
    }

    #[test]
    fn point_selectivities_by_default() {
        let (cat, ids) = setup(3, 2);
        let mut wg = WorkloadGenerator::new(8);
        let profile = QueryProfile {
            p_filter: 0.0,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        assert!(!q.has_uncertain_selectivities());
    }

    #[test]
    fn calibrated_result_sizes_are_sane() {
        // a·b·σ should land within [0.01, 1.5]·min(a,b) by construction.
        let (cat, ids) = setup(4, 3);
        let mut wg = WorkloadGenerator::new(4);
        let profile = QueryProfile {
            p_filter: 0.0,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        for j in &q.joins {
            let a = cat.table(q.tables[j.left.table].table).stats.pages as f64;
            let b = cat.table(q.tables[j.right.table].table).stats.pages as f64;
            let result = a * b * j.selectivity.mean();
            let small = a.min(b);
            assert!(
                result <= small * 1.5 + 1.0 && result >= small * 0.01 * 0.5,
                "result {result} outside band for min {small}"
            );
        }
    }
}
