//! Physical evaluation plans.
//!
//! Plans are binary operator trees.  The optimizer only *constructs*
//! left-deep trees (the System R heuristic of §2.2: "a three-relation join
//! evaluation plan involves the combination of a two-relation join result
//! and a stored relation"), but the representation is a general tree so the
//! executor and cost model need no special cases.

use crate::query::ColumnRef;
use crate::tableset::TableSet;
use std::fmt;

/// The binary join algorithms of the cost model.
///
/// `SortMerge`, `GraceHash` and `PageNestedLoop` carry the paper's cost
/// formulas (§3.6.1, Example 1.1, §3.6.2); `BlockNestedLoop` is the
/// standard refinement of page nested-loop mentioned as the realistic
/// variant in \[Sha86\] and serves as an ablation of formula granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoinMethod {
    /// Sort both inputs, merge.  Output sorted on the join column.
    SortMerge,
    /// Grace hash join \[Sha86\].  Output unordered.
    GraceHash,
    /// Naive page nested-loop.  Preserves outer order.
    PageNestedLoop,
    /// Block nested-loop with `M-2` buffer blocks.  Output unordered.
    BlockNestedLoop,
}

impl JoinMethod {
    /// All methods, for enumeration loops.
    pub const ALL: [JoinMethod; 4] = [
        JoinMethod::SortMerge,
        JoinMethod::GraceHash,
        JoinMethod::PageNestedLoop,
        JoinMethod::BlockNestedLoop,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            JoinMethod::SortMerge => "SM",
            JoinMethod::GraceHash => "GH",
            JoinMethod::PageNestedLoop => "NL",
            JoinMethod::BlockNestedLoop => "BNL",
        }
    }
}

impl fmt::Display for JoinMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Sequential (heap) scan of a base table, applying its local filter.
    SeqScan {
        /// Query-local table index.
        table: usize,
    },
    /// Index scan of a base table through the index matching its filter.
    IndexScan {
        /// Query-local table index.
        table: usize,
    },
    /// Explicit sort enforcer.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Sort key (canonical form is up to the caller).
        key: ColumnRef,
    },
    /// Binary join.
    Join {
        /// Algorithm.
        method: JoinMethod,
        /// Outer (left) input — in left-deep plans, the composite.
        outer: Box<PlanNode>,
        /// Inner (right) input — in left-deep plans, a base access.
        inner: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Convenience constructor for a join.
    pub fn join(method: JoinMethod, outer: PlanNode, inner: PlanNode) -> PlanNode {
        PlanNode::Join {
            method,
            outer: Box::new(outer),
            inner: Box::new(inner),
        }
    }

    /// Convenience constructor for a sort.
    pub fn sort(input: PlanNode, key: ColumnRef) -> PlanNode {
        PlanNode::Sort {
            input: Box::new(input),
            key,
        }
    }

    /// Set of base tables referenced by the plan.
    pub fn tables(&self) -> TableSet {
        match self {
            PlanNode::SeqScan { table } | PlanNode::IndexScan { table } => {
                TableSet::singleton(*table)
            }
            PlanNode::Sort { input, .. } => input.tables(),
            PlanNode::Join { outer, inner, .. } => outer.tables().union(inner.tables()),
        }
    }

    /// Number of join operators in the plan.
    pub fn n_joins(&self) -> usize {
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => 0,
            PlanNode::Sort { input, .. } => input.n_joins(),
            PlanNode::Join { outer, inner, .. } => 1 + outer.n_joins() + inner.n_joins(),
        }
    }

    /// Number of execution *phases* in the paper's §3.5 sense: one per join
    /// plus one per explicit sort (a sort is a blocking pass of its own).
    pub fn n_phases(&self) -> usize {
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => 0,
            PlanNode::Sort { input, .. } => 1 + input.n_phases(),
            PlanNode::Join { outer, inner, .. } => 1 + outer.n_phases() + inner.n_phases(),
        }
    }

    /// True when the plan is left-deep: every join's inner child is a base
    /// access (possibly wrapped in the System R sense — we do not place
    /// sorts below joins, so no wrapper appears on the inner side).
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => true,
            PlanNode::Sort { input, .. } => input.is_left_deep(),
            PlanNode::Join { outer, inner, .. } => {
                matches!(
                    **inner,
                    PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. }
                ) && outer.is_left_deep()
            }
        }
    }

    /// The left-deep join order: base-table indices from the innermost
    /// (first-joined) outward.  Sort nodes are transparent.
    ///
    /// # Panics
    /// Panics when the plan is not left-deep.
    pub fn join_order(&self) -> Vec<usize> {
        match self {
            PlanNode::SeqScan { table } | PlanNode::IndexScan { table } => vec![*table],
            PlanNode::Sort { input, .. } => input.join_order(),
            PlanNode::Join { outer, inner, .. } => {
                let mut order = outer.join_order();
                match &**inner {
                    PlanNode::SeqScan { table } | PlanNode::IndexScan { table } => {
                        order.push(*table)
                    }
                    _ => panic!("join_order on non-left-deep plan"),
                }
                order
            }
        }
    }

    /// Count joins per method, for experiment reporting.
    pub fn method_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        self.visit(&mut |node| {
            if let PlanNode::Join { method, .. } = node {
                let idx = JoinMethod::ALL
                    .iter()
                    .position(|m| m == method)
                    .expect("known method");
                h[idx] += 1;
            }
        });
        h
    }

    /// The plan with every query-local table index `i` replaced by
    /// `map[i]` (sort keys included).  This is the relabeling step of
    /// cross-query plan caching: a plan optimized for one query is carried
    /// into the table numbering of an isomorphic query.
    ///
    /// # Panics
    /// Panics when the plan references a table index outside `map`.
    pub fn relabel_tables(&self, map: &[usize]) -> PlanNode {
        match self {
            PlanNode::SeqScan { table } => PlanNode::SeqScan { table: map[*table] },
            PlanNode::IndexScan { table } => PlanNode::IndexScan { table: map[*table] },
            PlanNode::Sort { input, key } => PlanNode::Sort {
                input: Box::new(input.relabel_tables(map)),
                key: ColumnRef::new(map[key.table], key.column),
            },
            PlanNode::Join {
                method,
                outer,
                inner,
            } => PlanNode::Join {
                method: *method,
                outer: Box::new(outer.relabel_tables(map)),
                inner: Box::new(inner.relabel_tables(map)),
            },
        }
    }

    /// Pre-order visit of every node.
    pub fn visit(&self, f: &mut impl FnMut(&PlanNode)) {
        f(self);
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => {}
            PlanNode::Sort { input, .. } => input.visit(f),
            PlanNode::Join { outer, inner, .. } => {
                outer.visit(f);
                inner.visit(f);
            }
        }
    }

    /// One-line summary, e.g. `Sort(SM(NL(R0,R1),R2))`.
    pub fn compact(&self) -> String {
        match self {
            PlanNode::SeqScan { table } => format!("R{table}"),
            PlanNode::IndexScan { table } => format!("IxR{table}"),
            PlanNode::Sort { input, .. } => format!("Sort({})", input.compact()),
            PlanNode::Join {
                method,
                outer,
                inner,
            } => {
                format!("{}({},{})", method.name(), outer.compact(), inner.compact())
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::SeqScan { table } => writeln!(f, "{pad}SeqScan  table={table}"),
            PlanNode::IndexScan { table } => writeln!(f, "{pad}IndexScan table={table}"),
            PlanNode::Sort { input, key } => {
                writeln!(f, "{pad}Sort key={key}")?;
                input.fmt_indented(f, depth + 1)
            }
            PlanNode::Join {
                method,
                outer,
                inner,
            } => {
                writeln!(f, "{pad}Join [{method}]")?;
                outer.fmt_indented(f, depth + 1)?;
                inner.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left_deep_3() -> PlanNode {
        PlanNode::join(
            JoinMethod::SortMerge,
            PlanNode::join(
                JoinMethod::PageNestedLoop,
                PlanNode::SeqScan { table: 0 },
                PlanNode::SeqScan { table: 1 },
            ),
            PlanNode::IndexScan { table: 2 },
        )
    }

    #[test]
    fn tables_and_join_counts() {
        let p = left_deep_3();
        assert_eq!(p.tables(), TableSet::from_indices([0, 1, 2]));
        assert_eq!(p.n_joins(), 2);
        assert_eq!(p.n_phases(), 2);
        let sorted = PlanNode::sort(p, ColumnRef::new(0, 0));
        assert_eq!(sorted.n_joins(), 2);
        assert_eq!(sorted.n_phases(), 3);
    }

    #[test]
    fn left_deep_recognition() {
        let p = left_deep_3();
        assert!(p.is_left_deep());
        assert_eq!(p.join_order(), vec![0, 1, 2]);
        let bushy = PlanNode::join(
            JoinMethod::GraceHash,
            PlanNode::SeqScan { table: 0 },
            PlanNode::join(
                JoinMethod::GraceHash,
                PlanNode::SeqScan { table: 1 },
                PlanNode::SeqScan { table: 2 },
            ),
        );
        assert!(!bushy.is_left_deep());
    }

    #[test]
    fn method_histogram_counts() {
        let p = left_deep_3();
        let h = p.method_histogram();
        assert_eq!(h, [1, 0, 1, 0]); // one SM, one NL
    }

    #[test]
    fn compact_rendering() {
        let p = PlanNode::sort(left_deep_3(), ColumnRef::new(0, 0));
        assert_eq!(p.compact(), "Sort(SM(NL(R0,R1),IxR2))");
    }

    #[test]
    fn display_is_indented() {
        let p = left_deep_3();
        let s = p.to_string();
        assert!(s.contains("Join [SM]"));
        assert!(s.contains("  Join [NL]"));
        assert!(s.contains("    SeqScan  table=0"));
    }

    #[test]
    fn relabeling_maps_scans_and_sort_keys() {
        let p = PlanNode::sort(left_deep_3(), ColumnRef::new(2, 1));
        let map = [1usize, 2, 0];
        let r = p.relabel_tables(&map);
        assert_eq!(r.tables(), TableSet::from_indices([0, 1, 2]));
        assert_eq!(r.compact(), "Sort(SM(NL(R1,R2),IxR0))");
        match &r {
            PlanNode::Sort { key, .. } => assert_eq!(*key, ColumnRef::new(0, 1)),
            _ => panic!("sort survives relabeling"),
        }
        // Identity map is a no-op.
        assert_eq!(p.relabel_tables(&[0, 1, 2]), p);
    }

    #[test]
    fn visit_sees_all_nodes() {
        let mut count = 0;
        left_deep_3().visit(&mut |_| count += 1);
        assert_eq!(count, 5);
    }
}
