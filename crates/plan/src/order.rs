//! Interesting orders: column equivalence classes and order properties.
//!
//! The paper brackets interesting orders away ("this requires simple
//! extensions of the optimization algorithm, as described in \[SAC+79\] …
//! our solutions apply without change in the presence of these
//! extensions"), yet its own Example 1.1 *depends* on them: Plan 1 wins at
//! high memory precisely because sort-merge output is already ordered on
//! the join column while the hash plan must add a final sort.  We therefore
//! implement the \[SAC+79\] extension: plans carry an order property, and the
//! DP keeps the best plan per (subset, order property).
//!
//! Because equi-joins make their two columns equal, "sorted on A.x" and
//! "sorted on B.y" are the same physical property once `A.x = B.y` has been
//! applied.  [`ColumnEquivalences`] computes those classes with a
//! union-find over all join-predicate columns.

use crate::query::{ColumnRef, Query};
use std::collections::HashMap;

/// The order property of a plan's output.
///
/// `Sorted(c)` means "sorted on the equivalence class whose canonical
/// representative is `c`"; canonicalization is performed by
/// [`ColumnEquivalences::canonical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrderProperty {
    /// No useful ordering.
    None,
    /// Sorted on the given (canonical) column class.
    Sorted(ColumnRef),
}

/// Union-find over query columns, seeded by the query's equi-join
/// predicates.
#[derive(Debug, Clone)]
pub struct ColumnEquivalences {
    parent: HashMap<ColumnRef, ColumnRef>,
}

impl ColumnEquivalences {
    /// Build the classes for a query: one `union` per join predicate.
    pub fn for_query(query: &Query) -> Self {
        let mut eq = ColumnEquivalences {
            parent: HashMap::new(),
        };
        for p in &query.joins {
            eq.union(p.left, p.right);
        }
        eq
    }

    fn find(&self, c: ColumnRef) -> ColumnRef {
        let mut cur = c;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    fn union(&mut self, a: ColumnRef, b: ColumnRef) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic representative: smaller (table, column) wins.
            let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(child, root);
            self.parent.entry(root).or_insert(root);
        } else {
            self.parent.entry(ra).or_insert(ra);
        }
    }

    /// Canonical representative of a column's equivalence class.
    pub fn canonical(&self, c: ColumnRef) -> ColumnRef {
        self.find(c)
    }

    /// Are two columns made equal by the query's join predicates?
    pub fn same_class(&self, a: ColumnRef, b: ColumnRef) -> bool {
        self.find(a) == self.find(b)
    }

    /// The canonical order property for "sorted on column c".
    pub fn sorted_on(&self, c: ColumnRef) -> OrderProperty {
        OrderProperty::Sorted(self.canonical(c))
    }

    /// Does a plan with order property `have` satisfy a requirement to be
    /// sorted on `want`?
    pub fn satisfies(&self, have: OrderProperty, want: ColumnRef) -> bool {
        match have {
            OrderProperty::None => false,
            OrderProperty::Sorted(c) => c == self.canonical(want),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{JoinPredicate, QueryTable};
    use lec_catalog::TableId;

    fn query_with_joins(n: usize, joins: Vec<(ColumnRef, ColumnRef)>) -> Query {
        Query {
            tables: (0..n)
                .map(|i| QueryTable::bare(TableId(i as u32)))
                .collect(),
            joins: joins
                .into_iter()
                .map(|(l, r)| JoinPredicate::exact(l, r, 1e-3))
                .collect(),
            required_order: None,
        }
    }

    #[test]
    fn join_columns_are_equivalent() {
        let q = query_with_joins(
            3,
            vec![
                (ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
                (ColumnRef::new(1, 0), ColumnRef::new(2, 1)),
            ],
        );
        let eq = ColumnEquivalences::for_query(&q);
        // Transitive: 0.0 = 1.0 = 2.1
        assert!(eq.same_class(ColumnRef::new(0, 0), ColumnRef::new(2, 1)));
        assert_eq!(eq.canonical(ColumnRef::new(2, 1)), ColumnRef::new(0, 0));
        // Unrelated column is its own class.
        assert!(!eq.same_class(ColumnRef::new(0, 1), ColumnRef::new(0, 0)));
        assert_eq!(eq.canonical(ColumnRef::new(0, 1)), ColumnRef::new(0, 1));
    }

    #[test]
    fn order_satisfaction_uses_classes() {
        let q = query_with_joins(2, vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 3))]);
        let eq = ColumnEquivalences::for_query(&q);
        let sorted_left = eq.sorted_on(ColumnRef::new(0, 0));
        // Sorted on A.c0 satisfies "order by B.c3" because the join equated them.
        assert!(eq.satisfies(sorted_left, ColumnRef::new(1, 3)));
        assert!(eq.satisfies(sorted_left, ColumnRef::new(0, 0)));
        assert!(!eq.satisfies(sorted_left, ColumnRef::new(1, 1)));
        assert!(!eq.satisfies(OrderProperty::None, ColumnRef::new(0, 0)));
    }

    #[test]
    fn sorted_on_canonicalizes_both_sides() {
        let q = query_with_joins(2, vec![(ColumnRef::new(1, 2), ColumnRef::new(0, 5))]);
        let eq = ColumnEquivalences::for_query(&q);
        assert_eq!(
            eq.sorted_on(ColumnRef::new(1, 2)),
            eq.sorted_on(ColumnRef::new(0, 5))
        );
    }

    #[test]
    fn disjoint_classes_stay_disjoint() {
        let q = query_with_joins(
            4,
            vec![
                (ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
                (ColumnRef::new(2, 0), ColumnRef::new(3, 0)),
            ],
        );
        let eq = ColumnEquivalences::for_query(&q);
        assert!(!eq.same_class(ColumnRef::new(0, 0), ColumnRef::new(2, 0)));
    }
}
