//! SPJ query blocks: tables, predicates and required output order.

use crate::tableset::TableSet;
use lec_catalog::{Catalog, TableId};
use lec_prob::Distribution;
use std::fmt;

/// A reference to a column of a table *within one query*: `(query-local
/// table index, column index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Position of the table in `Query::tables`.
    pub table: usize,
    /// Column index within that table.
    pub column: usize,
}

impl ColumnRef {
    /// Convenience constructor.
    pub fn new(table: usize, column: usize) -> Self {
        ColumnRef { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.c{}", self.table, self.column)
    }
}

/// A local (single-table) selection predicate.
///
/// The paper's Algorithm D assumes per-table input sizes "after any initial
/// selection"; the selectivity here is the (possibly uncertain) fraction of
/// *pages* that survive the selection.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalPredicate {
    /// Column the predicate restricts (determines index eligibility).
    pub column: usize,
    /// Fraction of the table that qualifies; a distribution to model the
    /// paper's "notoriously uncertain" selectivities.
    pub selectivity: Distribution,
}

/// One table occurrence in a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTable {
    /// The stored table.
    pub table: TableId,
    /// Optional local selection applied before any join.
    pub filter: Option<LocalPredicate>,
}

impl QueryTable {
    /// A bare table occurrence.
    pub fn bare(table: TableId) -> Self {
        QueryTable {
            table,
            filter: None,
        }
    }

    /// A filtered table occurrence.
    pub fn filtered(table: TableId, column: usize, selectivity: Distribution) -> Self {
        QueryTable {
            table,
            filter: Some(LocalPredicate {
                column,
                selectivity,
            }),
        }
    }
}

/// An equi-join predicate between two query tables.
///
/// `selectivity` follows the paper's §3.6 convention: the join of inputs of
/// `a` and `b` pages with selectivity `σ` has size `a·b·σ` pages ("for each
/// triple (a, b, σ) ... the probability that the join has size abσ").
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicate {
    /// One side of the equality.
    pub left: ColumnRef,
    /// The other side.
    pub right: ColumnRef,
    /// Page-level selectivity distribution.
    pub selectivity: Distribution,
}

impl JoinPredicate {
    /// Construct a predicate with a point selectivity.
    pub fn exact(left: ColumnRef, right: ColumnRef, selectivity: f64) -> Self {
        JoinPredicate {
            left,
            right,
            selectivity: Distribution::point(selectivity),
        }
    }

    /// The pair of table indices this predicate connects.
    pub fn tables(&self) -> (usize, usize) {
        (self.left.table, self.right.table)
    }

    /// True when the predicate crosses between `set` and table `idx`.
    pub fn connects(&self, set: TableSet, idx: usize) -> bool {
        let (a, b) = self.tables();
        (set.contains(a) && b == idx) || (set.contains(b) && a == idx)
    }

    /// Given that the predicate connects `set` to `idx`, the column on the
    /// `set` side and the column on the `idx` side.
    pub fn oriented(&self, idx: usize) -> (ColumnRef, ColumnRef) {
        if self.right.table == idx {
            (self.left, self.right)
        } else {
            (self.right, self.left)
        }
    }
}

/// Errors found while validating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query references no tables.
    NoTables,
    /// More tables than [`TableSet::MAX_TABLES`].
    TooManyTables(usize),
    /// A column reference points at a table index out of range.
    BadTableIndex(usize),
    /// A join predicate relates a table to itself.
    SelfJoinPredicate(usize),
    /// The join graph is not connected (the DP would produce a cross
    /// product; the paper assumes a predicate between every pair, possibly
    /// trivially true, so we require connectivity instead).
    Disconnected,
    /// A table id is not present in the catalog.
    UnknownTable(TableId),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoTables => write!(f, "query has no tables"),
            QueryError::TooManyTables(n) => write!(f, "query has {n} tables, max 64"),
            QueryError::BadTableIndex(i) => write!(f, "table index {i} out of range"),
            QueryError::SelfJoinPredicate(i) => {
                write!(f, "join predicate relates table {i} to itself")
            }
            QueryError::Disconnected => write!(f, "join graph is not connected"),
            QueryError::UnknownTable(id) => write!(f, "table {id} not in catalog"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An SPJ query block: the unit the paper's optimizer works on (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Tables, with optional local selections.
    pub tables: Vec<QueryTable>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPredicate>,
    /// Output must be sorted on this column (Example 1.1's requirement), if
    /// present.
    pub required_order: Option<ColumnRef>,
}

impl Query {
    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The set of all table indices.
    pub fn all_tables(&self) -> TableSet {
        TableSet::full(self.n_tables())
    }

    /// Indices of join predicates that connect `set` to table `idx`
    /// (the predicates applied when table `idx` joins last).
    pub fn joins_connecting(&self, set: TableSet, idx: usize) -> Vec<usize> {
        self.joins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.connects(set, idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// True when table `idx` has at least one predicate into `set`
    /// (used to avoid cross products during enumeration).
    pub fn is_connected_to(&self, set: TableSet, idx: usize) -> bool {
        self.joins.iter().any(|p| p.connects(set, idx))
    }

    /// Indices of join predicates with one side in `a` and the other in `b`.
    pub fn joins_crossing(&self, a: TableSet, b: TableSet) -> Vec<usize> {
        self.joins
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let (l, r) = p.tables();
                (a.contains(l) && b.contains(r)) || (a.contains(r) && b.contains(l))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Validate structure against a catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        let n = self.n_tables();
        if n == 0 {
            return Err(QueryError::NoTables);
        }
        if n > TableSet::MAX_TABLES {
            return Err(QueryError::TooManyTables(n));
        }
        for qt in &self.tables {
            if catalog.try_table(qt.table).is_none() {
                return Err(QueryError::UnknownTable(qt.table));
            }
        }
        let check = |c: &ColumnRef| {
            if c.table >= n {
                Err(QueryError::BadTableIndex(c.table))
            } else {
                Ok(())
            }
        };
        for p in &self.joins {
            check(&p.left)?;
            check(&p.right)?;
            if p.left.table == p.right.table {
                return Err(QueryError::SelfJoinPredicate(p.left.table));
            }
        }
        if let Some(ord) = &self.required_order {
            check(ord)?;
        }
        // Connectivity via BFS over the join graph.
        if n > 1 {
            let mut seen = TableSet::singleton(0);
            let mut frontier = vec![0usize];
            while let Some(t) = frontier.pop() {
                for p in &self.joins {
                    let (a, b) = p.tables();
                    let other = if a == t {
                        b
                    } else if b == t {
                        a
                    } else {
                        continue;
                    };
                    if !seen.contains(other) {
                        seen = seen.with(other);
                        frontier.push(other);
                    }
                }
            }
            if seen.len() != n {
                return Err(QueryError::Disconnected);
            }
        }
        Ok(())
    }

    /// The same query with table `i` renumbered to `map[i]`: the tables
    /// vector is reordered accordingly, while the join predicates keep
    /// their vector order and left/right orientation (only the indices
    /// inside their column references change).  `map` must be a
    /// permutation of `0..n_tables()`.
    ///
    /// Keeping predicate order and orientation fixed matters: combined
    /// selectivities are floating-point products taken in predicate-vector
    /// order, so a renaming that also shuffled the vector could change
    /// low-order result bits.  With this relabeling, optimizing the
    /// renamed query is bit-for-bit the same computation under new labels
    /// — the property the cross-query plan cache's byte-identity guarantee
    /// stands on.
    ///
    /// # Panics
    /// Panics when `map` is not a permutation of the table indices.
    pub fn relabel_tables(&self, map: &[usize]) -> Query {
        let n = self.n_tables();
        assert_eq!(map.len(), n, "relabel map must cover every table");
        let mut tables: Vec<Option<QueryTable>> = vec![None; n];
        for (i, qt) in self.tables.iter().enumerate() {
            let slot = &mut tables[map[i]];
            assert!(slot.is_none(), "relabel map must be a permutation");
            *slot = Some(qt.clone());
        }
        let relabel = |c: &ColumnRef| ColumnRef::new(map[c.table], c.column);
        Query {
            tables: tables
                .into_iter()
                .map(|t| t.expect("permutation"))
                .collect(),
            joins: self
                .joins
                .iter()
                .map(|j| JoinPredicate {
                    left: relabel(&j.left),
                    right: relabel(&j.right),
                    selectivity: j.selectivity.clone(),
                })
                .collect(),
            required_order: self.required_order.as_ref().map(relabel),
        }
    }

    /// Does any parameter of this query carry genuine uncertainty?
    /// (If not, LEC optimization degenerates to LSC — the paper's
    /// single-bucket remark.)
    pub fn has_uncertain_selectivities(&self) -> bool {
        self.joins.iter().any(|p| !p.selectivity.is_point())
            || self
                .tables
                .iter()
                .any(|t| t.filter.as_ref().is_some_and(|f| !f.selectivity.is_point()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_catalog::{ColumnStats, TableStats};

    fn catalog(n: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            cat.add_table(
                format!("R{i}"),
                TableStats::new(100, 1000, vec![ColumnStats::plain("c0", 10)]),
            );
        }
        cat
    }

    fn chain_query(n: usize) -> Query {
        Query {
            tables: (0..n)
                .map(|i| QueryTable::bare(TableId(i as u32)))
                .collect(),
            joins: (0..n - 1)
                .map(|i| JoinPredicate::exact(ColumnRef::new(i, 0), ColumnRef::new(i + 1, 0), 1e-4))
                .collect(),
            required_order: None,
        }
    }

    #[test]
    fn chain_query_validates() {
        let cat = catalog(4);
        assert_eq!(chain_query(4).validate(&cat), Ok(()));
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let cat = catalog(4);
        let mut q = chain_query(4);
        q.joins.remove(1); // split 0-1 from 2-3
        assert_eq!(q.validate(&cat), Err(QueryError::Disconnected));
    }

    #[test]
    fn bad_indices_are_rejected() {
        let cat = catalog(2);
        let mut q = chain_query(2);
        q.joins[0].right = ColumnRef::new(7, 0);
        assert_eq!(q.validate(&cat), Err(QueryError::BadTableIndex(7)));

        let mut q = chain_query(2);
        q.joins[0].right = ColumnRef::new(0, 1);
        assert_eq!(q.validate(&cat), Err(QueryError::SelfJoinPredicate(0)));

        let mut q = chain_query(2);
        q.required_order = Some(ColumnRef::new(5, 0));
        assert_eq!(q.validate(&cat), Err(QueryError::BadTableIndex(5)));

        let mut q = chain_query(2);
        q.tables[0].table = TableId(42);
        assert_eq!(q.validate(&cat), Err(QueryError::UnknownTable(TableId(42))));

        let empty = Query {
            tables: vec![],
            joins: vec![],
            required_order: None,
        };
        assert_eq!(empty.validate(&cat), Err(QueryError::NoTables));
    }

    #[test]
    fn joins_connecting_respects_orientation() {
        let q = chain_query(3);
        let set01 = TableSet::from_indices([0, 1]);
        assert_eq!(q.joins_connecting(set01, 2), vec![1]);
        assert_eq!(q.joins_connecting(TableSet::singleton(0), 1), vec![0]);
        assert!(q.joins_connecting(TableSet::singleton(0), 2).is_empty());
        assert!(q.is_connected_to(set01, 2));
        assert!(!q.is_connected_to(TableSet::singleton(0), 2));
    }

    #[test]
    fn joins_crossing_sets() {
        let q = chain_query(4);
        let a = TableSet::from_indices([0, 1]);
        let b = TableSet::from_indices([2, 3]);
        assert_eq!(q.joins_crossing(a, b), vec![1]); // only predicate 1-2 crosses
        assert_eq!(q.joins_crossing(b, a), vec![1]);
        assert!(q.joins_crossing(a, TableSet::EMPTY).is_empty());
    }

    #[test]
    fn oriented_returns_set_side_first() {
        let p = JoinPredicate::exact(ColumnRef::new(0, 1), ColumnRef::new(1, 2), 0.5);
        let (s, t) = p.oriented(1);
        assert_eq!(s, ColumnRef::new(0, 1));
        assert_eq!(t, ColumnRef::new(1, 2));
        let (s, t) = p.oriented(0);
        assert_eq!(s, ColumnRef::new(1, 2));
        assert_eq!(t, ColumnRef::new(0, 1));
    }

    #[test]
    fn relabeling_is_a_validated_permutation() {
        let cat = catalog(4);
        let mut q = chain_query(4);
        q.required_order = Some(ColumnRef::new(3, 0));
        // 0→2, 1→0, 2→3, 3→1
        let map = [2usize, 0, 3, 1];
        let r = q.relabel_tables(&map);
        assert_eq!(r.validate(&cat), Ok(()));
        assert_eq!(r.joins.len(), q.joins.len());
        // Predicate order and orientation survive; indices are mapped.
        for (orig, rel) in q.joins.iter().zip(&r.joins) {
            assert_eq!(rel.left.table, map[orig.left.table]);
            assert_eq!(rel.right.table, map[orig.right.table]);
            assert_eq!(rel.selectivity, orig.selectivity);
        }
        assert_eq!(r.required_order, Some(ColumnRef::new(1, 0)));
        // The inverse map restores the original query exactly.
        let mut inv = [0usize; 4];
        for (i, &m) in map.iter().enumerate() {
            inv[m] = i;
        }
        assert_eq!(r.relabel_tables(&inv), q);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabeling_rejects_non_permutations() {
        chain_query(3).relabel_tables(&[0, 0, 1]);
    }

    #[test]
    fn uncertainty_detection() {
        let mut q = chain_query(2);
        assert!(!q.has_uncertain_selectivities());
        q.joins[0].selectivity = Distribution::bimodal(1e-5, 1e-3, 0.5).unwrap();
        assert!(q.has_uncertain_selectivities());
    }
}
