//! Bitset over the tables of one query.
//!
//! The System R dag's nodes "are labeled by the subsets of {1,…,n}" (§2.2);
//! `TableSet` is that label.  Indices are query-local (0-based positions in
//! `Query::tables`), not global `TableId`s, so a `u64` comfortably covers
//! any join the exponential DP could ever enumerate.

use std::fmt;

/// A set of query-local table indices (0..64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TableSet(u64);

impl TableSet {
    /// The empty set (the root of the paper's dag).
    pub const EMPTY: TableSet = TableSet(0);

    /// Maximum supported index.
    pub const MAX_TABLES: usize = 64;

    /// Set containing a single table.
    pub fn singleton(idx: usize) -> Self {
        assert!(idx < Self::MAX_TABLES);
        TableSet(1 << idx)
    }

    /// Set containing all of `0..n`.
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_TABLES);
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Construct from an iterator of indices.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = TableSet::EMPTY;
        for i in indices {
            s = s.with(i);
        }
        s
    }

    /// Raw bits (useful as a dense DP index).
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Build from raw bits.
    pub fn from_bits(bits: u64) -> Self {
        TableSet(bits)
    }

    /// Number of tables in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        idx < Self::MAX_TABLES && (self.0 >> idx) & 1 == 1
    }

    /// Set with `idx` added.
    pub fn with(&self, idx: usize) -> Self {
        assert!(idx < Self::MAX_TABLES);
        TableSet(self.0 | (1 << idx))
    }

    /// Set with `idx` removed (the paper's `S_j = S − {j}`).
    pub fn without(&self, idx: usize) -> Self {
        assert!(idx < Self::MAX_TABLES);
        TableSet(self.0 & !(1 << idx))
    }

    /// Union.
    pub fn union(&self, other: TableSet) -> Self {
        TableSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(&self, other: TableSet) -> Self {
        TableSet(self.0 & other.0)
    }

    /// True when `self ⊆ other`.
    pub fn is_subset_of(&self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(idx)
            }
        })
    }

    /// The single member of a singleton set.
    ///
    /// # Panics
    /// Panics when the set is not a singleton.
    pub fn sole_member(&self) -> usize {
        assert_eq!(self.len(), 1, "sole_member on non-singleton {self}");
        self.0.trailing_zeros() as usize
    }

    /// All subsets of `{0..n}` of cardinality `k`, in increasing bit order.
    ///
    /// This drives the per-depth phases of the DP ("the nodes at depth k are
    /// labeled by the subsets of cardinality k").
    pub fn subsets_of_size(n: usize, k: usize) -> Vec<TableSet> {
        assert!(n <= Self::MAX_TABLES);
        let mut out = Vec::new();
        if k > n {
            return out;
        }
        if k == 0 {
            out.push(TableSet::EMPTY);
            return out;
        }
        // Gosper's hack: next bit-permutation with the same popcount.
        let mut v: u64 = (1u64 << k) - 1;
        let limit: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        while v <= limit {
            out.push(TableSet(v));
            if v == 0 {
                break;
            }
            let t = v | (v - 1);
            if t == u64::MAX {
                break;
            }
            v = (t + 1) | (((!t & (t + 1)) - 1) >> (v.trailing_zeros() + 1));
        }
        out
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, idx) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{idx}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_algebra() {
        let s = TableSet::from_indices([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        assert_eq!(s.without(2), TableSet::from_indices([0, 5]));
        assert_eq!(s.with(1).len(), 4);
        assert!(TableSet::singleton(2).is_subset_of(s));
        assert!(!s.is_subset_of(TableSet::singleton(2)));
        assert_eq!(
            s.union(TableSet::singleton(1)),
            TableSet::from_indices([0, 1, 2, 5])
        );
        assert_eq!(s.intersect(TableSet::from_indices([2, 5, 7])).len(), 2);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(TableSet::full(4).len(), 4);
        assert!(TableSet::EMPTY.is_empty());
        assert_eq!(TableSet::full(0), TableSet::EMPTY);
        assert_eq!(TableSet::full(64).len(), 64);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = TableSet::from_indices([7, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn sole_member_of_singleton() {
        assert_eq!(TableSet::singleton(9).sole_member(), 9);
    }

    #[test]
    #[should_panic]
    fn sole_member_panics_on_pair() {
        TableSet::from_indices([1, 2]).sole_member();
    }

    #[test]
    fn subsets_of_size_counts_binomially() {
        fn choose(n: u64, k: u64) -> u64 {
            if k > n {
                return 0;
            }
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in 0..=8 {
            for k in 0..=n {
                let subs = TableSet::subsets_of_size(n, k);
                assert_eq!(subs.len() as u64, choose(n as u64, k as u64), "n={n},k={k}");
                for s in &subs {
                    assert_eq!(s.len(), k);
                    assert!(s.is_subset_of(TableSet::full(n)));
                }
                // strictly increasing bit order, hence distinct
                for w in subs.windows(2) {
                    assert!(w[0].bits() < w[1].bits());
                }
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TableSet::from_indices([0, 3]).to_string(), "{0,3}");
        assert_eq!(TableSet::EMPTY.to_string(), "{}");
    }
}
