//! # lec-plan — queries, plans, and workloads
//!
//! Representation layer for the LEC reproduction:
//!
//! * [`TableSet`] — the subset-of-relations bitsets labelling nodes of the
//!   System R dynamic-programming dag (§2.2);
//! * [`Query`] — an SPJ block: tables (with optional local selections),
//!   equi-join predicates with (possibly uncertain) selectivities, and an
//!   optional required output order (Example 1.1's "result needs to be
//!   ordered by the join column");
//! * [`order`] — column equivalence classes induced by join predicates and
//!   the order-property lattice used for "interesting orders";
//! * [`PlanNode`] — physical plan trees over the four join methods;
//! * [`workload`] — seeded generators for chain/star/clique/random join
//!   queries, substituting for the paper's unavailable "realistic queries".

pub mod order;
pub mod physical;
pub mod query;
pub mod tableset;
pub mod workload;

pub use order::{ColumnEquivalences, OrderProperty};
pub use physical::{JoinMethod, PlanNode};
pub use query::{ColumnRef, JoinPredicate, LocalPredicate, Query, QueryTable};
pub use tableset::TableSet;
pub use workload::{QueryProfile, Topology, WorkloadGenerator};
