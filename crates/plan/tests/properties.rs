//! Property tests for the plan crate: set algebra, subset enumeration,
//! equivalence classes, and workload generation.

use lec_catalog::CatalogGenerator;
use lec_plan::{
    ColumnEquivalences, ColumnRef, QueryProfile, TableSet, Topology, WorkloadGenerator,
};
use proptest::prelude::*;

fn arb_indices() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..32, 0..10)
}

proptest! {
    #[test]
    fn tableset_algebra_laws(a in arb_indices(), b in arb_indices()) {
        let sa = TableSet::from_indices(a.iter().copied());
        let sb = TableSet::from_indices(b.iter().copied());
        // Union/intersection identities.
        prop_assert_eq!(sa.union(sb), sb.union(sa));
        prop_assert_eq!(sa.intersect(sb), sb.intersect(sa));
        prop_assert!(sa.intersect(sb).is_subset_of(sa));
        prop_assert!(sa.is_subset_of(sa.union(sb)));
        // Membership agrees with construction.
        for i in 0..32 {
            prop_assert_eq!(sa.contains(i), a.contains(&i));
        }
        // len is cardinality of the deduplicated index set.
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(sa.len(), dedup.len());
        // with/without round trip.
        for &i in &a {
            prop_assert_eq!(sa.without(i).with(i), sa);
            prop_assert!(!sa.without(i).contains(i));
        }
    }

    #[test]
    fn subsets_partition_by_cardinality(n in 0usize..10) {
        let mut total = 0usize;
        for k in 0..=n {
            let subs = TableSet::subsets_of_size(n, k);
            total += subs.len();
            for s in &subs {
                prop_assert_eq!(s.len(), k);
            }
        }
        prop_assert_eq!(total, 1 << n);
    }

    #[test]
    fn iteration_round_trips(a in arb_indices()) {
        let s = TableSet::from_indices(a.iter().copied());
        let back = TableSet::from_indices(s.iter());
        prop_assert_eq!(s, back);
        // Iteration is strictly increasing.
        let v: Vec<usize> = s.iter().collect();
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Generated workloads always validate against their catalog, whatever
    /// the knobs.
    #[test]
    fn workloads_always_validate(
        seed in 0u64..10_000,
        n in 2usize..7,
        topo_idx in 0usize..4,
        sel_buckets in 1usize..6,
        p_filter in 0.0f64..1.0,
        p_order in 0.0f64..1.0,
    ) {
        let topology = [Topology::Chain, Topology::Star, Topology::Clique, Topology::Random][topo_idx];
        let mut g = CatalogGenerator::new(seed);
        let cat = g.generate(n + 1);
        let ids = g.pick_tables(&cat, n);
        let mut wg = WorkloadGenerator::new(seed ^ 0xF00D);
        let profile = QueryProfile {
            topology,
            sel_buckets,
            p_filter,
            p_required_order: p_order,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        prop_assert_eq!(q.validate(&cat), Ok(()));
        // Selectivities stay in (0, 1].
        for j in &q.joins {
            prop_assert!(j.selectivity.min_value() > 0.0);
            prop_assert!(j.selectivity.max_value() <= 1.0 + 1e-12);
        }
    }

    /// Column equivalence is an equivalence relation: reflexive, symmetric,
    /// transitive — over the classes induced by random chain queries.
    #[test]
    fn equivalences_are_an_equivalence_relation(seed in 0u64..10_000, n in 2usize..6) {
        let mut g = CatalogGenerator::new(seed);
        let cat = g.generate(n + 1);
        let ids = g.pick_tables(&cat, n);
        let mut wg = WorkloadGenerator::new(seed + 9);
        let q = wg.gen_query(&cat, &ids, &QueryProfile { topology: Topology::Random, ..Default::default() });
        let eq = ColumnEquivalences::for_query(&q);
        let cols: Vec<ColumnRef> = q
            .joins
            .iter()
            .flat_map(|p| [p.left, p.right])
            .collect();
        for &a in &cols {
            prop_assert!(eq.same_class(a, a));
            for &b in &cols {
                prop_assert_eq!(eq.same_class(a, b), eq.same_class(b, a));
                for &c in &cols {
                    if eq.same_class(a, b) && eq.same_class(b, c) {
                        prop_assert!(eq.same_class(a, c));
                    }
                }
            }
        }
        // Canonical representatives are idempotent.
        for &a in &cols {
            prop_assert_eq!(eq.canonical(eq.canonical(a)), eq.canonical(a));
        }
    }
}
