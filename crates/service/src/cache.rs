//! The cross-query plan store: a lock-striped, `&self`-shareable cache of
//! exact-key LRU entries, a weak-shape index for revalidation, and the
//! in-flight singleflight table behind request coalescing.
//!
//! Entries are keyed by the full exact encoding (not a hash of it), so
//! distinct shapes can never collide into each other's plans.  The exact
//! map is split into [`CACHE_SHARDS`] lock-striped shards selected by a
//! fingerprint of the canonical key: the 97%+ hit path of a skewed
//! workload takes exactly one shard lock, so concurrent clients only ever
//! serialize when they race on the same sliver of the key space.  Each
//! shard runs its own LRU over its slice of the capacity, and the
//! counters are atomics ([`CacheStats`] is a point-in-time snapshot).
//!
//! The weak index maps each bucketed shape to the canonical plan most
//! recently cached under it — the plan a near-miss request revalidates
//! against — sharded and LRU-bounded the same way (by weak key, since
//! weak and exact keys hash apart; a weak entry can therefore briefly
//! outlive its evicted exact entry, which only affects the
//! revalidated-vs-recomputed *label*, never the served bytes: weak hits
//! always run a fresh search).
//!
//! Each exact shard also carries the shard's **in-flight table**: the
//! first thread to miss on a key inserts an [`InflightSearch`] under the
//! same shard lock that observed the miss and becomes the *leader*;
//! concurrent misses on the same key find the entry and become
//! *followers*, blocking on the leader's search instead of running their
//! own ([`CacheDecision::Coalesced`]).  Plans are stored in *canonical*
//! label space — the server relabels them into each caller's numbering on
//! the way out.

use crate::concurrent::ServeError;
use lec_canon::RefusalReason;
use lec_core::SearchStats;
use lec_plan::PlanNode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Number of lock stripes in the exact and weak maps.  Enough that a
/// handful of client threads rarely collide on a shard, few enough that
/// per-shard LRU slices stay large (default capacity 512 → 32 entries per
/// shard).
pub const CACHE_SHARDS: usize = 16;

/// What the cache did for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// Exact canonical-shape hit: the cached plan was relabeled and
    /// returned without running any search.
    Served,
    /// Exact miss that raced an identical in-flight miss: this request
    /// blocked on that leader's search and was answered by relabeling the
    /// leader's canonical result — one DP ran for the whole cohort.
    Coalesced,
    /// The bucketed shape matched but the exact parameters did not; a
    /// fresh search ran and *confirmed* the cached plan (the response is
    /// the fresh result, so byte-identity is unconditional).
    Revalidated,
    /// Miss (or a weak hit whose cached plan turned out stale): a fresh
    /// search ran and its result was inserted.
    Recomputed,
    /// The request cannot be cached — a randomized mode (RNG trajectories
    /// are not rename-equivariant) or a query the canonicalizer declined.
    Uncacheable,
}

impl CacheDecision {
    /// Lower-case label for logs and JSON metrics.
    pub fn name(&self) -> &'static str {
        match self {
            CacheDecision::Served => "served",
            CacheDecision::Coalesced => "coalesced",
            CacheDecision::Revalidated => "revalidated",
            CacheDecision::Recomputed => "recomputed",
            CacheDecision::Uncacheable => "uncacheable",
        }
    }
}

/// A point-in-time snapshot of a cache's lifetime counters (the live
/// counters are atomics so every client thread can bump them through
/// `&self`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Requests that consulted the cache (uncacheable ones included).
    pub lookups: u64,
    /// Exact hits answered without a search.
    pub served: u64,
    /// Followers answered by blocking on a concurrent leader's search.
    pub coalesced_followers: u64,
    /// Leaders whose single search also answered at least one follower.
    pub coalesced_leaders: u64,
    /// Weak hits whose cached plan a fresh search confirmed.
    pub revalidated: u64,
    /// Misses (and stale weak hits) that ran a fresh search.
    pub recomputed: u64,
    /// Requests that bypassed the cache entirely.
    pub uncacheable: u64,
    /// Uncacheable requests the canonicalizer refused as empty or larger
    /// than [`lec_canon::MAX_CANON_TABLES`] tables.
    pub refused_too_many_tables: u64,
    /// Uncacheable requests refused as too symmetric to label within
    /// [`lec_canon::MAX_CANDIDATE_PERMS`] candidate permutations.
    pub refused_too_many_permutations: u64,
    /// Uncacheable requests refused for interchangeable twin tables
    /// (label-dependent DP tie-breaks).
    pub refused_twin_tables: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the per-shard LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of cacheable lookups answered without running (or waiting
    /// on) a search — exact hits only; coalesced followers are counted
    /// separately since they still paid a search's latency.
    pub fn hit_rate(&self) -> f64 {
        let cacheable = self.lookups.saturating_sub(self.uncacheable);
        if cacheable == 0 {
            0.0
        } else {
            self.served as f64 / cacheable as f64
        }
    }

    /// Machine-readable form for the service's metrics endpoint.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "lookups": self.lookups,
            "served": self.served,
            "coalesced_followers": self.coalesced_followers,
            "coalesced_leaders": self.coalesced_leaders,
            "revalidated": self.revalidated,
            "recomputed": self.recomputed,
            "uncacheable": self.uncacheable,
            "refusals": {
                "too_many_tables": self.refused_too_many_tables,
                "too_many_permutations": self.refused_too_many_permutations,
                "twin_tables": self.refused_twin_tables,
            },
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        })
    }
}

impl serde_json::Serialize for CacheStats {
    fn to_value(&self) -> serde_json::Value {
        self.to_json()
    }
}

/// The live (atomic) counters behind [`CacheStats`].
#[derive(Debug, Default)]
struct AtomicCacheStats {
    lookups: AtomicU64,
    served: AtomicU64,
    coalesced_followers: AtomicU64,
    coalesced_leaders: AtomicU64,
    revalidated: AtomicU64,
    recomputed: AtomicU64,
    uncacheable: AtomicU64,
    refused_too_many_tables: AtomicU64,
    refused_too_many_permutations: AtomicU64,
    refused_twin_tables: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicCacheStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            coalesced_followers: self.coalesced_followers.load(Ordering::Relaxed),
            coalesced_leaders: self.coalesced_leaders.load(Ordering::Relaxed),
            revalidated: self.revalidated.load(Ordering::Relaxed),
            recomputed: self.recomputed.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            refused_too_many_tables: self.refused_too_many_tables.load(Ordering::Relaxed),
            refused_too_many_permutations: self
                .refused_too_many_permutations
                .load(Ordering::Relaxed),
            refused_twin_tables: self.refused_twin_tables.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A completed search result in canonical label space — what a leader
/// hands its followers and what the cache stores.
#[derive(Debug, Clone)]
pub(crate) struct CanonicalAnswer {
    /// The plan, canonically labeled.
    pub plan: PlanNode,
    /// Its objective value.
    pub cost: f64,
    /// The original computation's statistics.
    pub stats: SearchStats,
}

/// One in-flight search: the rendezvous between a leader and the
/// followers coalesced onto it.  The leader publishes exactly once —
/// a canonical answer, or the [`ServeError`] its search died with (an
/// optimizer error, or `Overloaded` when admission control shed the
/// leader: the whole cohort is told, never left hanging) — and every
/// follower wakes with a clone of it.
#[derive(Debug)]
pub(crate) struct InflightSearch {
    done: Mutex<Option<Result<Arc<CanonicalAnswer>, ServeError>>>,
    cv: Condvar,
    followers: AtomicU64,
}

impl InflightSearch {
    fn new() -> Self {
        InflightSearch {
            done: Mutex::new(None),
            cv: Condvar::new(),
            followers: AtomicU64::new(0),
        }
    }

    /// Block until the leader publishes, then share its result out (an
    /// `Arc` bump, not a deep clone — followers relabel from the shared
    /// canonical answer).
    pub(crate) fn wait(&self) -> Result<Arc<CanonicalAnswer>, ServeError> {
        let mut slot = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`Self::wait`], but give up at `deadline`: returns `None` if
    /// the leader has not published by then.  The leader's search is *not*
    /// cancelled — it still completes and feeds the cache; only this
    /// follower stops waiting (and reports `DeadlineExceeded` upstream).
    pub(crate) fn wait_deadline(
        &self,
        deadline: Instant,
    ) -> Option<Result<Arc<CanonicalAnswer>, ServeError>> {
        let mut slot = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            slot = guard;
        }
    }

    /// Number of followers that coalesced onto this search.
    pub(crate) fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    fn publish(&self, result: Result<Arc<CanonicalAnswer>, ServeError>) {
        let mut slot = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.cv.notify_all();
    }
}

/// The outcome of one exact-key lookup.
pub(crate) enum ExactLookup {
    /// The cached canonical answer (already counted as served).
    Hit(Arc<CanonicalAnswer>),
    /// This thread is the leader: it must run the search and then call
    /// [`ShapeCache::publish_answer`] or [`ShapeCache::publish_error`]
    /// with the same key — unconditionally, or followers deadlock (the
    /// server wraps the obligation in a drop guard).
    Lead(Arc<InflightSearch>),
    /// Another thread is already searching this exact key; wait on it.
    Follow(Arc<InflightSearch>),
}

/// One cached plan in canonical label space.  The answer rides in an
/// `Arc` so the hit path hands it out with a pointer bump — the deep
/// work (relabeling into the caller's numbering) happens outside the
/// shard lock, and one allocation is shared between the exact entry, the
/// weak entry, and every coalesced follower.
#[derive(Debug, Clone)]
struct CachedShapePlan {
    answer: Arc<CanonicalAnswer>,
    /// Exact hits this entry has answered.
    hits: u64,
    /// LRU clock value of the last touch.
    last_used: u64,
}

/// One exact-map stripe: its entries, its slice of the in-flight table,
/// and its own LRU clock.
#[derive(Debug, Default)]
struct ExactShard {
    entries: HashMap<Box<[u64]>, CachedShapePlan>,
    inflight: HashMap<Box<[u64]>, Arc<InflightSearch>>,
    tick: u64,
}

/// One weak-index stripe: bucketed shape → most recent canonical answer
/// (shared with the exact entry, compared by plan on revalidation).
#[derive(Debug, Default)]
struct WeakShard {
    entries: HashMap<Box<[u64]>, (Arc<CanonicalAnswer>, u64)>,
    tick: u64,
}

/// The sharded canonical-shape plan cache with per-shard LRU eviction and
/// singleflight coalescing.  Every method takes `&self`; the cache is
/// `Sync` and shared by all of a [`crate::ConcurrentPlanServer`]'s client
/// threads.
#[derive(Debug)]
pub struct ShapeCache {
    exact: Box<[Mutex<ExactShard>]>,
    weak: Box<[Mutex<WeakShard>]>,
    shard_capacity: usize,
    capacity: usize,
    stats: AtomicCacheStats,
}

impl ShapeCache {
    /// An empty cache holding at most `capacity` plans (apportioned over
    /// [`CACHE_SHARDS`] stripes; the stripe count clamps to `capacity`
    /// so the bound is never exceeded).
    pub fn new(capacity: usize) -> Self {
        ShapeCache::with_shards(capacity, CACHE_SHARDS)
    }

    /// An empty cache with an explicit stripe count (`shards >= 1`,
    /// clamped to `capacity`); tests use a single stripe to make the LRU
    /// order deterministic.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        ShapeCache {
            exact: (0..shards)
                .map(|_| Mutex::new(ExactShard::default()))
                .collect(),
            weak: (0..shards)
                .map(|_| Mutex::new(WeakShard::default()))
                .collect(),
            shard_capacity: capacity / shards,
            capacity,
            stats: AtomicCacheStats::default(),
        }
    }

    fn exact_shard(&self, key: &[u64]) -> MutexGuard<'_, ExactShard> {
        self.exact[lec_cost::shard_index(key, self.exact.len())]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn weak_shard(&self, key: &[u64]) -> MutexGuard<'_, WeakShard> {
        self.weak[lec_cost::shard_index(key, self.weak.len())]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.exact
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Count one request consulting the cache.
    pub(crate) fn count_lookup(&self) {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request bypassing the cache.
    pub(crate) fn count_uncacheable(&self) {
        self.stats.uncacheable.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request the canonicalizer refused — bypasses the cache
    /// like any uncacheable request, plus a per-reason counter so the
    /// metrics can say *why* requests stopped being cacheable.
    pub(crate) fn count_refusal(&self, reason: RefusalReason) {
        self.stats.uncacheable.fetch_add(1, Ordering::Relaxed);
        match reason {
            RefusalReason::TooManyTables => &self.stats.refused_too_many_tables,
            RefusalReason::TooManyPermutations => &self.stats.refused_too_many_permutations,
            RefusalReason::TwinTables => &self.stats.refused_twin_tables,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Per-entry exact-hit counters, descending — the skew profile of the
    /// workload as the cache sees it.
    pub fn hit_histogram(&self) -> Vec<u64> {
        let mut hits: Vec<u64> = Vec::new();
        for shard in self.exact.iter() {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            hits.extend(shard.entries.values().map(|e| e.hits));
        }
        hits.sort_unstable_by(|a, b| b.cmp(a));
        hits
    }

    /// Exact lookup with singleflight admission, in one shard-lock
    /// critical section: a cached entry is a [`ExactLookup::Hit`] (LRU and
    /// hit counters touched), an uncached key with a search already in
    /// flight joins it ([`ExactLookup::Follow`]), and an uncached idle key
    /// makes this thread the leader ([`ExactLookup::Lead`]).
    pub(crate) fn lookup_or_lead(&self, exact: &[u64]) -> ExactLookup {
        let mut shard = self.exact_shard(exact);
        let tick = shard.tick + 1;
        shard.tick = tick;
        if let Some(entry) = shard.entries.get_mut(exact) {
            entry.last_used = tick;
            entry.hits += 1;
            let answer = Arc::clone(&entry.answer);
            drop(shard);
            self.stats.served.fetch_add(1, Ordering::Relaxed);
            return ExactLookup::Hit(answer);
        }
        if let Some(flight) = shard.inflight.get(exact) {
            flight.followers.fetch_add(1, Ordering::Relaxed);
            let flight = Arc::clone(flight);
            drop(shard);
            self.stats
                .coalesced_followers
                .fetch_add(1, Ordering::Relaxed);
            return ExactLookup::Follow(flight);
        }
        let flight = Arc::new(InflightSearch::new());
        shard
            .inflight
            .insert(exact.to_vec().into_boxed_slice(), Arc::clone(&flight));
        ExactLookup::Lead(flight)
    }

    /// Leader completion (success): classify the answer against the weak
    /// index (updating it), insert the entry under the exact key, retire
    /// the in-flight record, and wake the followers.  Returns the
    /// revalidated-vs-recomputed decision for the leader's own response.
    pub(crate) fn publish_answer(
        &self,
        exact: &[u64],
        weak: Box<[u64]>,
        answer: CanonicalAnswer,
    ) -> CacheDecision {
        // One allocation shared by the exact entry, the weak entry, and
        // every follower.
        let answer = Arc::new(answer);
        // Weak index first (its own stripe, never held together with an
        // exact stripe): does the bucketed shape already predict this
        // plan?
        let decision = {
            let mut shard = self.weak_shard(&weak);
            let tick = shard.tick + 1;
            shard.tick = tick;
            let matched =
                matches!(shard.entries.get(&weak), Some((prev, _)) if prev.plan == answer.plan);
            shard.entries.insert(weak, (Arc::clone(&answer), tick));
            if shard.entries.len() > self.shard_capacity {
                lec_cost::evict_coldest(&mut shard.entries, |(_, last_used)| *last_used);
            }
            if matched {
                CacheDecision::Revalidated
            } else {
                CacheDecision::Recomputed
            }
        };
        match decision {
            CacheDecision::Revalidated => &self.stats.revalidated,
            _ => &self.stats.recomputed,
        }
        .fetch_add(1, Ordering::Relaxed);

        let flight = {
            let mut shard = self.exact_shard(exact);
            let tick = shard.tick + 1;
            shard.tick = tick;
            shard.entries.insert(
                exact.to_vec().into_boxed_slice(),
                CachedShapePlan {
                    answer: Arc::clone(&answer),
                    hits: 0,
                    last_used: tick,
                },
            );
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            while shard.entries.len() > self.shard_capacity {
                lec_cost::evict_coldest(&mut shard.entries, |e| e.last_used);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // Retiring the in-flight record under the same lock that
            // inserted the entry closes the follower window: from here on
            // every new lookup is a plain hit.
            shard.inflight.remove(exact)
        };
        if let Some(flight) = flight {
            if flight.followers() > 0 {
                self.stats.coalesced_leaders.fetch_add(1, Ordering::Relaxed);
            }
            flight.publish(Ok(answer));
        }
        decision
    }

    /// Leader completion (failure): retire the in-flight record and wake
    /// the followers with the leader's error.  Nothing is cached.
    pub(crate) fn publish_error(&self, exact: &[u64], error: ServeError) {
        let flight = self.exact_shard(exact).inflight.remove(exact);
        if let Some(flight) = flight {
            if flight.followers() > 0 {
                self.stats.coalesced_leaders.fetch_add(1, Ordering::Relaxed);
            }
            flight.publish(Err(error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::OptError;

    fn key(v: u64) -> Box<[u64]> {
        vec![v].into_boxed_slice()
    }

    fn answer(t: usize, cost: f64) -> CanonicalAnswer {
        CanonicalAnswer {
            plan: PlanNode::SeqScan { table: t },
            cost,
            stats: SearchStats::default(),
        }
    }

    /// Lead on `k` and immediately publish `a` (the single-threaded
    /// equivalent of the old insert).
    fn insert(c: &ShapeCache, k: u64, weak: u64, a: CanonicalAnswer) -> CacheDecision {
        match c.lookup_or_lead(&key(k)) {
            ExactLookup::Lead(_) => c.publish_answer(&key(k), key(weak), a),
            _ => panic!("fresh key must elect a leader"),
        }
    }

    #[test]
    fn exact_hits_count_and_touch() {
        let c = ShapeCache::with_shards(4, 1);
        assert_eq!(
            insert(&c, 1, 100, answer(0, 1.0)),
            CacheDecision::Recomputed
        );
        assert_eq!(c.len(), 1);
        assert!(matches!(c.lookup_or_lead(&key(2)), ExactLookup::Lead(_)));
        c.publish_error(&key(2), ServeError::Opt(OptError::NoPlanFound));
        let ExactLookup::Hit(a) = c.lookup_or_lead(&key(1)) else {
            panic!("must hit")
        };
        assert_eq!(a.cost, 1.0);
        assert!(matches!(c.lookup_or_lead(&key(1)), ExactLookup::Hit(_)));
        assert_eq!(c.hit_histogram(), vec![2]);
        assert_eq!(c.stats().served, 2);
    }

    #[test]
    fn per_shard_lru_evicts_the_coldest_entry() {
        let c = ShapeCache::with_shards(2, 1);
        insert(&c, 1, 100, answer(0, 1.0));
        insert(&c, 2, 200, answer(1, 2.0));
        assert!(matches!(c.lookup_or_lead(&key(1)), ExactLookup::Hit(_))); // 2 is now coldest
        insert(&c, 3, 300, answer(2, 3.0));
        assert_eq!(c.len(), 2);
        assert!(
            matches!(c.lookup_or_lead(&key(2)), ExactLookup::Lead(_)),
            "coldest entry evicted"
        );
        c.publish_error(&key(2), ServeError::Opt(OptError::NoPlanFound));
        assert!(matches!(c.lookup_or_lead(&key(1)), ExactLookup::Hit(_)));
        assert!(matches!(c.lookup_or_lead(&key(3)), ExactLookup::Hit(_)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn weak_index_follows_the_newest_entry_of_a_shape() {
        let c = ShapeCache::with_shards(4, 1);
        assert_eq!(
            insert(&c, 1, 100, answer(0, 1.0)),
            CacheDecision::Recomputed
        );
        // Same weak shape, different plan: the weak index disagrees.
        assert_eq!(
            insert(&c, 2, 100, answer(1, 2.0)),
            CacheDecision::Recomputed
        );
        // Same weak shape, same plan as the most recent entry: revalidated.
        assert_eq!(
            insert(&c, 3, 100, answer(1, 3.0)),
            CacheDecision::Revalidated
        );
        assert_eq!(c.stats().revalidated, 1);
        assert_eq!(c.stats().recomputed, 2);
    }

    #[test]
    fn followers_coalesce_onto_the_leader_and_share_its_answer() {
        let c = Arc::new(ShapeCache::with_shards(4, 1));
        let ExactLookup::Lead(_lead) = c.lookup_or_lead(&key(7)) else {
            panic!("first miss leads")
        };
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let ExactLookup::Follow(f) = c.lookup_or_lead(&key(7)) else {
                    panic!("concurrent miss follows")
                };
                f
            })
            .collect();
        let waiters: Vec<_> = followers
            .into_iter()
            .map(|f| std::thread::spawn(move || f.wait()))
            .collect();
        c.publish_answer(&key(7), key(700), answer(4, 9.0));
        for w in waiters {
            let got = w.join().unwrap().expect("leader succeeded");
            assert_eq!(got.plan, PlanNode::SeqScan { table: 4 });
            assert_eq!(got.cost.to_bits(), 9.0f64.to_bits());
        }
        let s = c.stats();
        assert_eq!(s.coalesced_followers, 3);
        assert_eq!(s.coalesced_leaders, 1);
        // The cohort is gone; the key now hits.
        assert!(matches!(c.lookup_or_lead(&key(7)), ExactLookup::Hit(_)));
    }

    #[test]
    fn a_failed_leader_wakes_followers_with_its_error() {
        let c = ShapeCache::with_shards(4, 1);
        let ExactLookup::Lead(_lead) = c.lookup_or_lead(&key(9)) else {
            panic!("first miss leads")
        };
        let ExactLookup::Follow(f) = c.lookup_or_lead(&key(9)) else {
            panic!("second miss follows")
        };
        c.publish_error(&key(9), ServeError::Opt(OptError::WorkerPanicked));
        assert_eq!(
            f.wait().unwrap_err(),
            ServeError::Opt(OptError::WorkerPanicked)
        );
        // Nothing was cached; the next request elects a fresh leader.
        assert!(matches!(c.lookup_or_lead(&key(9)), ExactLookup::Lead(_)));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_ignores_uncacheable_lookups() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.lookups = 10;
        s.uncacheable = 2;
        s.served = 4;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let v = s.to_json();
        assert_eq!(v["served"].as_f64(), Some(4.0));
        assert!((v["hit_rate"].as_f64().unwrap() - 0.5).abs() < 1e-12);
    }
}
