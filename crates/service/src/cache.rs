//! The cross-query plan store: exact-key LRU entries plus a weak-shape
//! index for revalidation.
//!
//! Entries are keyed by the full exact encoding (not a hash of it), so
//! distinct shapes can never collide into each other's plans; the weak
//! index maps each bucketed shape to the most recent exact entry of that
//! shape, which is the plan a near-miss request revalidates against.
//! Plans are stored in *canonical* label space — the server relabels them
//! into each caller's numbering on the way out.

use lec_core::SearchStats;
use lec_plan::PlanNode;
use std::collections::HashMap;

/// What the cache did for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// Exact canonical-shape hit: the cached plan was relabeled and
    /// returned without running any search.
    Served,
    /// The bucketed shape matched but the exact parameters did not; a
    /// fresh search ran and *confirmed* the cached plan (the response is
    /// the fresh result, so byte-identity is unconditional).
    Revalidated,
    /// Miss (or a weak hit whose cached plan turned out stale): a fresh
    /// search ran and its result was inserted.
    Recomputed,
    /// The request cannot be cached — a randomized mode (RNG trajectories
    /// are not rename-equivariant) or a query the canonicalizer declined.
    Uncacheable,
}

impl CacheDecision {
    /// Lower-case label for logs and JSON metrics.
    pub fn name(&self) -> &'static str {
        match self {
            CacheDecision::Served => "served",
            CacheDecision::Revalidated => "revalidated",
            CacheDecision::Recomputed => "recomputed",
            CacheDecision::Uncacheable => "uncacheable",
        }
    }
}

/// Aggregate counters across a cache's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Requests that consulted the cache (uncacheable ones included).
    pub lookups: u64,
    /// Exact hits answered without a search.
    pub served: u64,
    /// Weak hits whose cached plan a fresh search confirmed.
    pub revalidated: u64,
    /// Misses (and stale weak hits) that ran a fresh search.
    pub recomputed: u64,
    /// Requests that bypassed the cache entirely.
    pub uncacheable: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of cacheable lookups answered without a search.
    pub fn hit_rate(&self) -> f64 {
        let cacheable = self.lookups.saturating_sub(self.uncacheable);
        if cacheable == 0 {
            0.0
        } else {
            self.served as f64 / cacheable as f64
        }
    }

    /// Machine-readable form for the service's metrics endpoint.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "lookups": self.lookups,
            "served": self.served,
            "revalidated": self.revalidated,
            "recomputed": self.recomputed,
            "uncacheable": self.uncacheable,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        })
    }
}

impl serde_json::Serialize for CacheStats {
    fn to_value(&self) -> serde_json::Value {
        self.to_json()
    }
}

/// One cached plan in canonical label space.
#[derive(Debug, Clone)]
pub(crate) struct CachedShapePlan {
    /// The plan, canonically labeled.
    pub plan: PlanNode,
    /// Its objective value.
    pub cost: f64,
    /// The original computation's statistics (served responses carry them
    /// with `elapsed` re-stamped to the serve latency).
    pub stats: SearchStats,
    /// Exact hits this entry has answered.
    pub hits: u64,
    /// LRU clock value of the last touch.
    last_used: u64,
    /// The weak key this entry is indexed under.
    weak: Box<[u64]>,
}

/// The canonical-shape plan cache with LRU eviction.
#[derive(Debug)]
pub struct ShapeCache {
    entries: HashMap<Box<[u64]>, CachedShapePlan>,
    weak_index: HashMap<Box<[u64]>, Box<[u64]>>,
    capacity: usize,
    tick: u64,
    pub(crate) stats: CacheStats,
}

impl ShapeCache {
    /// An empty cache holding at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        ShapeCache {
            entries: HashMap::new(),
            weak_index: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Per-entry exact-hit counters, descending — the skew profile of the
    /// workload as the cache sees it.
    pub fn hit_histogram(&self) -> Vec<u64> {
        let mut hits: Vec<u64> = self.entries.values().map(|e| e.hits).collect();
        hits.sort_unstable_by(|a, b| b.cmp(a));
        hits
    }

    /// Exact lookup; touches the LRU clock and the entry's hit counter.
    pub(crate) fn get_exact(&mut self, exact: &[u64]) -> Option<&CachedShapePlan> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(exact)?;
        entry.last_used = tick;
        entry.hits += 1;
        Some(entry)
    }

    /// The canonically-labeled plan cached under a weak shape, if any —
    /// the revalidation candidate for a near-miss.
    pub(crate) fn weak_plan(&self, weak: &[u64]) -> Option<&PlanNode> {
        let exact = self.weak_index.get(weak)?;
        self.entries.get(exact).map(|e| &e.plan)
    }

    /// Insert a freshly computed plan under both keys, evicting the
    /// least-recently-used entry when over capacity.
    pub(crate) fn insert(
        &mut self,
        exact: Box<[u64]>,
        weak: Box<[u64]>,
        plan: PlanNode,
        cost: f64,
        stats: SearchStats,
    ) {
        self.tick += 1;
        self.stats.insertions += 1;
        self.weak_index.insert(weak.clone(), exact.clone());
        self.entries.insert(
            exact,
            CachedShapePlan {
                plan,
                cost,
                stats,
                hits: 0,
                last_used: self.tick,
                weak,
            },
        );
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over-capacity cache is non-empty");
            if let Some(evicted) = self.entries.remove(&victim) {
                // Drop the weak pointer only if it still points here (a
                // newer entry of the same shape may have overwritten it).
                if self.weak_index.get(&evicted.weak) == Some(&victim) {
                    self.weak_index.remove(&evicted.weak);
                }
            }
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> Box<[u64]> {
        vec![v].into_boxed_slice()
    }

    fn plan(t: usize) -> PlanNode {
        PlanNode::SeqScan { table: t }
    }

    #[test]
    fn exact_hits_count_and_touch() {
        let mut c = ShapeCache::new(4);
        c.insert(key(1), key(100), plan(0), 1.0, SearchStats::default());
        assert_eq!(c.len(), 1);
        assert!(c.get_exact(&key(2)).is_none());
        let e = c.get_exact(&key(1)).unwrap();
        assert_eq!(e.hits, 1);
        assert_eq!(e.cost, 1.0);
        let e = c.get_exact(&key(1)).unwrap();
        assert_eq!(e.hits, 2);
        assert_eq!(c.hit_histogram(), vec![2]);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = ShapeCache::new(2);
        c.insert(key(1), key(100), plan(0), 1.0, SearchStats::default());
        c.insert(key(2), key(200), plan(1), 2.0, SearchStats::default());
        c.get_exact(&key(1)); // 2 is now coldest
        c.insert(key(3), key(300), plan(2), 3.0, SearchStats::default());
        assert_eq!(c.len(), 2);
        assert!(c.get_exact(&key(2)).is_none(), "coldest entry evicted");
        assert!(c.get_exact(&key(1)).is_some());
        assert!(c.get_exact(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.weak_plan(&key(200)).is_none(), "weak pointer cleaned");
    }

    #[test]
    fn weak_index_follows_the_newest_entry_of_a_shape() {
        let mut c = ShapeCache::new(4);
        c.insert(key(1), key(100), plan(0), 1.0, SearchStats::default());
        c.insert(key(2), key(100), plan(1), 2.0, SearchStats::default());
        assert_eq!(c.weak_plan(&key(100)), Some(&plan(1)));
    }

    #[test]
    fn hit_rate_ignores_uncacheable_lookups() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.lookups = 10;
        s.uncacheable = 2;
        s.served = 4;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let v = s.to_json();
        assert_eq!(v["served"].as_f64(), Some(4.0));
        assert!((v["hit_rate"].as_f64().unwrap() - 0.5).abs() < 1e-12);
    }
}
