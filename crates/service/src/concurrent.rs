//! The concurrent serving front end: a [`ConcurrentPlanServer`] that many
//! client threads share through `&self`.
//!
//! The per-query engine underneath has been `Sync` since PR 2 (sharded
//! eval cache), PR 3 (persistent worker pool) and PR 4 (sharded subplan
//! memo); this module makes the *serving* layer match.  Three layers:
//!
//! 1. **Sharded plan cache** ([`crate::cache::ShapeCache`]): the
//!    exact/weak maps are lock-striped, so the hit path — the 97%+ common
//!    case on a skewed workload — takes one shard lock for a few hundred
//!    nanoseconds instead of serializing every client behind a global
//!    `&mut self`.
//! 2. **In-flight coalescing (singleflight)**: concurrent misses on the
//!    same exact canonical key elect one *leader* whose single DP answers
//!    the whole cohort; *followers* block on it and get the canonical
//!    answer relabeled into their own table numbering
//!    ([`CacheDecision::Coalesced`]).  A thundering herd on a cold hot
//!    key runs one search, not N.
//! 3. **Shared worker-pool discipline**: every search borrows threads
//!    from one [`lec_core::search::PersistentPool`] and probes one shared
//!    [`SubplanMemo`] — both already safe under concurrent use (the pool
//!    serializes fan-outs internally; the memo is sharded).  A leader
//!    whose search dies — an engine-reported
//!    [`OptError::WorkerPanicked`], or a panic unwinding out of the
//!    optimizer — fails **exactly its own followers** (each receives the
//!    error) and nothing else: the in-flight record is retired, the pool
//!    survives, and the next request on that key elects a fresh leader.
//!
//! Byte-identity is the same acceptance bar as every layer before it:
//! whatever the interleaving, every response (plan, cost bits, table
//! numbering) equals a fresh [`Optimizer::optimize`] of that request —
//! pinned by `tests/concurrent_parity.rs` and the `concurrent_serve`
//! bench guard.
//!
//! ```
//! use std::sync::Arc;
//! use lec_core::{fixtures, Mode};
//! use lec_service::{CacheDecision, ConcurrentPlanServer};
//!
//! let (catalog, query) = fixtures::three_chain();
//! let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
//! let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory));
//!
//! // Many clients, one server, `&self` all the way down.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let server = Arc::clone(&server);
//!         let query = query.clone();
//!         scope.spawn(move || {
//!             let resp = server.serve(&query, &Mode::AlgorithmC).unwrap();
//!             assert!(resp.cost > 0.0);
//!         });
//!     }
//! });
//! assert_eq!(server.cache_stats().lookups, 4);
//! ```

use crate::cache::{CacheDecision, CacheStats, CanonicalAnswer, ExactLookup, ShapeCache};
use crate::server::{ServeResponse, DEFAULT_CACHE_CAPACITY};
use lec_canon::canonical_form;
use lec_catalog::Catalog;
use lec_core::search::{PersistentPool, SubplanMemo, WorkerPool};
use lec_core::{Mode, OptError, Optimizer};
use lec_cost::dist_fingerprint;
use lec_plan::Query;
use lec_prob::Distribution;
use lec_telemetry::{Outcome, Stage, Telemetry, TraceCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A service-level serving error: either the optimizer's own verdict, or
/// a condition of the *serving* layer (admission control, deadlines) that
/// no single-query [`Optimizer`] can produce.
///
/// [`ConcurrentPlanServer::serve_gated`] returns this; plain
/// [`ConcurrentPlanServer::serve`] keeps its historical
/// `Result<_, OptError>` signature (an ungated client opted out of
/// admission control, so the service-level variants never surface there —
/// see `serve` for how a mixed gated/ungated cohort is handled).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The search itself failed; identical to what a fresh
    /// [`Optimizer::optimize`] of the request would return.
    Opt(OptError),
    /// Admission control shed this request: the cold-search backlog was
    /// at capacity.  Transient — retry with backoff.
    Overloaded,
    /// The request's deadline expired while coalesced behind an in-flight
    /// leader.  The leader's search keeps running and feeds the cache;
    /// only this response is abandoned.  Transient — a retry usually
    /// hits the cache.
    DeadlineExceeded,
}

impl ServeError {
    /// Stable lower-case label for logs, metrics, and wire error codes.
    pub fn name(&self) -> &'static str {
        match self {
            ServeError::Opt(_) => "opt",
            ServeError::Overloaded => "overloaded",
            ServeError::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// True for errors worth retrying blindly (with backoff): the request
    /// was never searched, or its answer will be cached momentarily.
    /// `Opt` errors — including [`OptError::WorkerPanicked`], which means
    /// a search genuinely died — are *not* transient: clients must
    /// surface those, not hammer the server with them.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Overloaded | ServeError::DeadlineExceeded)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Opt(e) => write!(f, "optimizer error: {e}"),
            ServeError::Overloaded => write!(f, "server overloaded; retry with backoff"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<OptError> for ServeError {
    fn from(e: OptError) -> Self {
        ServeError::Opt(e)
    }
}

/// Serving-layer extension points, threaded through
/// [`ConcurrentPlanServer::serve_gated`].  A daemon implements this once
/// to get admission control (bounded cold-search backlog with
/// load-shedding) and deterministic fault injection; the default
/// implementation of every hook is a no-op, and `()` implements the
/// trait as "admit everything, inject nothing".
///
/// Only requests that are about to run a **fresh search** (a coalescing
/// leader, or an uncacheable request) consult [`ServeHooks::admit_cold`];
/// exact hits and coalesced followers cost microseconds and bypass
/// admission entirely — under overload the cache keeps serving while the
/// expensive path sheds.
pub trait ServeHooks: Sync {
    /// Called before this request occupies a cold-search slot.  Return
    /// `false` to shed it: the request fails fast with
    /// [`ServeError::Overloaded`] (a shed *leader* publishes that error
    /// to its whole cohort — followers are never left hanging).
    fn admit_cold(&self) -> bool {
        true
    }

    /// Called when an admitted cold search releases its slot (however it
    /// ended — success, error, or panic; the server guarantees pairing
    /// via a drop guard).
    fn release_cold(&self) {}

    /// Called after admission, immediately before the search runs.  The
    /// fault-injection harness uses this to delay or kill a leader
    /// mid-cohort; a panic out of this hook is indistinguishable from a
    /// search that died ([`OptError::WorkerPanicked`] to the cohort).
    fn before_search(&self) {}
}

/// `()` is the ungated hook set: admit everything, inject nothing.
impl ServeHooks for () {}

/// Drop guard pairing every successful [`ServeHooks::admit_cold`] with
/// exactly one [`ServeHooks::release_cold`], even when the search panics.
struct ColdPermit<'h> {
    hooks: &'h dyn ServeHooks,
}

impl Drop for ColdPermit<'_> {
    fn drop(&mut self) {
        self.hooks.release_cold();
    }
}

/// A long-lived, thread-shared query-optimization service over one
/// catalog and memory belief.
///
/// Where [`crate::PlanServer`] answers one client at a time (`&mut
/// self`), this server is the multi-client front end: [`serve`] takes
/// `&self`, so any number of threads share one instance (typically
/// `Arc<ConcurrentPlanServer>`, or plain borrows under
/// [`std::thread::scope`]).  See the [module docs](self) for the three
/// layers — sharded cache, singleflight coalescing, shared pool/memo —
/// and the byte-identity contract.
///
/// [`serve`]: ConcurrentPlanServer::serve
#[derive(Debug)]
pub struct ConcurrentPlanServer<'a> {
    optimizer: Optimizer<'a>,
    cache: ShapeCache,
    memo: Option<Arc<SubplanMemo>>,
    memory_fp: u64,
    search_fp: u64,
    /// Lifetime total of subsets discarded by branch-and-bound pruning
    /// across every fresh search this server ran (served/coalesced
    /// responses reuse an already-counted search).
    pruned_subsets: AtomicU64,
    /// Lifetime total of lower-bound evaluations across fresh searches.
    bound_evals: AtomicU64,
    /// Lifetime total of sharp per-edge bound evaluations (tiered checks
    /// that escalated past the cheap universal floor).
    sharp_bound_evals: AtomicU64,
    /// Lifetime total of tiered checks settled by the cheap floor alone.
    cheap_bound_skips: AtomicU64,
    /// Observability surface ([`lec_telemetry::Telemetry`]): outcome
    /// latency histograms recorded on every serve, engine histograms
    /// installed into the optimizer, trace ring + slow log fed by traced
    /// callers.  `None` keeps the serve path entirely uninstrumented.
    telemetry: Option<Arc<Telemetry>>,
}

/// The whole point: one server instance is shared by every client thread.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<ConcurrentPlanServer<'static>>();
};

impl<'a> ConcurrentPlanServer<'a> {
    /// A server over `catalog` believing `memory`, with the default cache
    /// capacity, a persistent worker pool sized to the host, and a shared
    /// cross-search subplan memo — the same defaults as
    /// [`crate::PlanServer::new`].
    pub fn new(catalog: &'a Catalog, memory: Distribution) -> Self {
        let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::for_host());
        let memo = Arc::new(SubplanMemo::default());
        Self::with_optimizer(
            Optimizer::new(catalog, memory)
                .with_worker_pool(pool)
                .with_subplan_memo(memo),
            DEFAULT_CACHE_CAPACITY,
        )
    }

    /// A server around an explicitly configured optimizer (search config,
    /// worker pool, subplan memo) and cache capacity.
    pub fn with_optimizer(optimizer: Optimizer<'a>, cache_capacity: usize) -> Self {
        let memory_fp = dist_fingerprint(optimizer.memory());
        let search_fp = optimizer.search_config().fingerprint();
        let memo = optimizer.search_config().memo.clone();
        ConcurrentPlanServer {
            optimizer,
            cache: ShapeCache::new(cache_capacity),
            memo,
            memory_fp,
            search_fp,
            pruned_subsets: AtomicU64::new(0),
            bound_evals: AtomicU64::new(0),
            sharp_bound_evals: AtomicU64::new(0),
            cheap_bound_skips: AtomicU64::new(0),
            telemetry: None,
        }
    }

    /// This server with a telemetry surface installed: request outcomes
    /// (served/coalesced/fresh/shed/error) are recorded into its latency
    /// histograms on every serve, and the optimizer's searches time their
    /// engine internals into [`Telemetry::engine`].  Purely observational
    /// — served bytes are identical with or without it.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.optimizer
            .set_telemetry(Some(Arc::clone(telemetry.engine())));
        self.telemetry = Some(telemetry);
        self
    }

    /// The installed telemetry surface, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Fold one fresh search's pruning counters into the lifetime totals.
    fn count_search(&self, stats: &lec_core::SearchStats) {
        self.pruned_subsets
            .fetch_add(stats.pruned_subsets, Ordering::Relaxed);
        self.bound_evals
            .fetch_add(stats.bound_evals, Ordering::Relaxed);
        self.sharp_bound_evals
            .fetch_add(stats.sharp_bound_evals, Ordering::Relaxed);
        self.cheap_bound_skips
            .fetch_add(stats.cheap_bound_skips, Ordering::Relaxed);
    }

    /// The optimizer answering cache misses.
    pub fn optimizer(&self) -> &Optimizer<'a> {
        &self.optimizer
    }

    /// A snapshot of the lifetime cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Per-entry exact-hit counters, descending.
    pub fn hit_histogram(&self) -> Vec<u64> {
        self.cache.hit_histogram()
    }

    /// The cross-search subplan memo backing this server's searches, if
    /// one is installed.
    pub fn subplan_memo(&self) -> Option<&Arc<SubplanMemo>> {
        self.memo.as_ref()
    }

    /// Answer one optimization request; safe to call from any number of
    /// threads concurrently.
    ///
    /// The response is byte-identical (plan, cost bits, table numbering)
    /// to a fresh [`Optimizer::optimize`] of the same request whatever
    /// the cache decided and however the calls interleaved.  Concurrent
    /// misses on the same exact canonical key run **one** search: the
    /// leader's, whose [`CacheDecision`] is `Recomputed`/`Revalidated` as
    /// usual, while every follower reports [`CacheDecision::Coalesced`]
    /// and carries the leader's counters with `elapsed` re-stamped to its
    /// own wait.  A leader that fails (or panics) propagates the error to
    /// exactly its own followers — coalesced cohorts on other keys never
    /// notice.
    pub fn serve(&self, query: &Query, mode: &Mode) -> Result<ServeResponse, OptError> {
        loop {
            match self.serve_gated(query, mode, &(), None) {
                Ok(resp) => return Ok(resp),
                Err(ServeError::Opt(e)) => return Err(e),
                // Only reachable when this ungated request coalesced onto
                // a *gated* leader that was shed mid-cohort: the in-flight
                // record is already retired, so retrying makes progress —
                // a hit, a new cohort, or leading an ungated search
                // itself.  `DeadlineExceeded` cannot occur with no
                // deadline.
                Err(_) => continue,
            }
        }
    }

    /// [`serve`](Self::serve) with serving-layer controls: `hooks` gates
    /// admission of fresh (cold) searches and injects faults, `deadline`
    /// bounds how long this request may wait coalesced behind another
    /// leader's in-flight search.
    ///
    /// The byte-identity contract is unchanged — a response, when one is
    /// produced, is bit-identical to plain `serve`.  The extra
    /// [`ServeError`] variants are *refusals*, not different answers: a
    /// cold request denied admission fails fast with
    /// [`ServeError::Overloaded`] (and a shed leader publishes that to
    /// its whole cohort, so followers never hang), and a follower whose
    /// deadline passes gets [`ServeError::DeadlineExceeded`] while the
    /// leader's search runs on and feeds the cache.  Warm hits bypass
    /// both gates: under overload the cache keeps serving.
    pub fn serve_gated(
        &self,
        query: &Query,
        mode: &Mode,
        hooks: &dyn ServeHooks,
        deadline: Option<Instant>,
    ) -> Result<ServeResponse, ServeError> {
        self.serve_traced(query, mode, hooks, deadline, &mut TraceCtx::disabled())
    }

    /// [`serve_gated`](Self::serve_gated) with request tracing: typed
    /// stage spans (cache probe, admission gate, coalesce wait, DP
    /// search) are appended to `trace` as the request moves through the
    /// pipeline, and — when telemetry is installed — its outcome class
    /// and wall time land in the latency histograms.  The caller owns the
    /// trace lifecycle: the daemon brackets this call with its decode and
    /// flush spans and then publishes via
    /// [`Telemetry::finish_request`].  With a disabled trace and no
    /// telemetry this is exactly `serve_gated` — the instrumentation is
    /// all early-return branches, and the warm hit path allocates
    /// nothing it didn't before.
    pub fn serve_traced(
        &self,
        query: &Query,
        mode: &Mode,
        hooks: &dyn ServeHooks,
        deadline: Option<Instant>,
        trace: &mut TraceCtx,
    ) -> Result<ServeResponse, ServeError> {
        let timer = self.telemetry.as_ref().map(|_| Instant::now());
        let result = self.serve_inner(query, mode, hooks, deadline, trace);
        if let (Some(tel), Some(t0)) = (&self.telemetry, timer) {
            let outcome = match &result {
                Ok(resp) => match resp.decision {
                    CacheDecision::Served => Outcome::Served,
                    CacheDecision::Coalesced => Outcome::Coalesced,
                    _ => Outcome::Fresh,
                },
                Err(ServeError::Overloaded) => Outcome::Shed,
                Err(_) => Outcome::Error,
            };
            tel.record_outcome(
                outcome,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        result
    }

    fn serve_inner(
        &self,
        query: &Query,
        mode: &Mode,
        hooks: &dyn ServeHooks,
        deadline: Option<Instant>,
        trace: &mut TraceCtx,
    ) -> Result<ServeResponse, ServeError> {
        let t0 = Instant::now();
        query
            .validate(self.optimizer.catalog())
            .map_err(OptError::InvalidQuery)
            .map_err(ServeError::Opt)?;
        self.cache.count_lookup();
        // Cache-probe span: canonicalization + lookup, closed at the
        // decision point with the branch taken as its detail
        // (0 = hit, 1 = follow, 2 = lead, 3 = uncacheable).
        let probe_start = trace.now_ns();

        // Serving a cached (or coalesced) plan to a renamed request is
        // only sound when the mode commutes with table renaming — see
        // `PlanServer::serve`; the refusals are identical here.
        let cacheable_mode = !matches!(
            mode,
            Mode::IterativeImprovement { .. } | Mode::SimulatedAnnealing { .. }
        );
        let form = if cacheable_mode {
            match canonical_form(self.optimizer.catalog(), query) {
                Ok(form) => Some(form),
                Err(reason) => {
                    // Counts as uncacheable *and* under its reason, so the
                    // metrics can distinguish "workload outgrew the
                    // canonicalizer" from "queries are too symmetric".
                    self.cache.count_refusal(reason);
                    None
                }
            }
        } else {
            self.cache.count_uncacheable();
            None
        };
        let Some(form) = form else {
            // Uncacheable requests always run a fresh search, so they pay
            // the cold toll too (no cohort to notify on a shed).
            trace.span(Stage::CacheProbe, probe_start, 3);
            let adm_start = trace.now_ns();
            let admitted = hooks.admit_cold();
            trace.span(Stage::Admission, adm_start, admitted as u64);
            if !admitted {
                return Err(ServeError::Overloaded);
            }
            let _permit = ColdPermit { hooks };
            hooks.before_search();
            let search_start = trace.now_ns();
            let out = match self.optimizer.optimize(query, mode) {
                Ok(out) => {
                    trace.span(Stage::Search, search_start, search_detail(&out.stats));
                    out
                }
                Err(e) => {
                    trace.span(Stage::Search, search_start, 0);
                    return Err(e.into());
                }
            };
            self.count_search(&out.stats);
            return Ok(ServeResponse {
                plan: out.plan,
                cost: out.cost,
                mode: out.mode,
                stats: out.stats,
                decision: CacheDecision::Uncacheable,
            });
        };

        let env = [self.memory_fp, mode.fingerprint(), self.search_fp];
        let exact_key = key_with_env(&form.exact, &env);
        let weak_key = key_with_env(&form.weak, &env);

        match self.cache.lookup_or_lead(&exact_key) {
            ExactLookup::Hit(answer) => {
                trace.span(Stage::CacheProbe, probe_start, 0);
                let plan = answer.plan.relabel_tables(&form.inverse_perm());
                let mut stats = answer.stats;
                stats.elapsed = t0.elapsed();
                Ok(ServeResponse {
                    plan,
                    cost: answer.cost,
                    mode: mode.name(),
                    stats,
                    decision: CacheDecision::Served,
                })
            }
            ExactLookup::Follow(flight) => {
                trace.span(Stage::CacheProbe, probe_start, 1);
                let wait_start = trace.now_ns();
                let waited = match deadline {
                    Some(d) => flight.wait_deadline(d).ok_or(ServeError::DeadlineExceeded),
                    None => Ok(flight.wait()),
                };
                // Detail 1 marks a wait that expired or surfaced the
                // leader's error rather than an answer.
                trace.span(
                    Stage::CoalesceWait,
                    wait_start,
                    matches!(&waited, Ok(Ok(_))) as u64 ^ 1,
                );
                let answer = waited??;
                let plan = answer.plan.relabel_tables(&form.inverse_perm());
                let mut stats = answer.stats;
                stats.elapsed = t0.elapsed();
                Ok(ServeResponse {
                    plan,
                    cost: answer.cost,
                    mode: mode.name(),
                    stats,
                    decision: CacheDecision::Coalesced,
                })
            }
            ExactLookup::Lead(_flight) => {
                trace.span(Stage::CacheProbe, probe_start, 2);
                // From here on this thread owes the cohort a publication;
                // the guard pays the debt with `WorkerPanicked` if the
                // search unwinds past us.
                let guard = LeaderGuard {
                    cache: &self.cache,
                    exact_key: &exact_key,
                    completed: false,
                };
                // Shedding a *leader* must tell its whole cohort: the
                // followers coalesced onto a search that will never run.
                let adm_start = trace.now_ns();
                let admitted = hooks.admit_cold();
                trace.span(Stage::Admission, adm_start, admitted as u64);
                if !admitted {
                    guard.complete_err(ServeError::Overloaded);
                    return Err(ServeError::Overloaded);
                }
                let _permit = ColdPermit { hooks };
                // A panic out of this hook (the fault harness killing the
                // leader) unwinds past `guard`, which publishes
                // `WorkerPanicked` to the cohort — exactly as if the
                // search itself had died.
                hooks.before_search();
                let search_start = trace.now_ns();
                match self.optimizer.optimize(query, mode) {
                    Ok(out) => {
                        trace.span(Stage::Search, search_start, search_detail(&out.stats));
                        self.count_search(&out.stats);
                        let canon_plan = out.plan.relabel_tables(&form.perm);
                        let decision = guard.complete_ok(
                            weak_key,
                            CanonicalAnswer {
                                plan: canon_plan,
                                cost: out.cost,
                                stats: out.stats,
                            },
                        );
                        let mut stats = out.stats;
                        stats.elapsed = t0.elapsed();
                        Ok(ServeResponse {
                            plan: out.plan,
                            cost: out.cost,
                            mode: out.mode,
                            stats,
                            decision,
                        })
                    }
                    Err(e) => {
                        trace.span(Stage::Search, search_start, 0);
                        guard.complete_err(ServeError::Opt(e.clone()));
                        Err(ServeError::Opt(e))
                    }
                }
            }
        }
    }

    /// Machine-readable service metrics: cache counters (coalescing and
    /// per-reason canonicalizer refusals included), occupancy, the
    /// exact-hit skew histogram, the subplan memo's counters (`null` when
    /// no memo is installed), lifetime branch-and-bound pruning totals
    /// across every fresh search, and — when telemetry is installed — the
    /// full observability snapshot (latency histograms with
    /// p50/p90/p99/p999, engine timing, trace ring, slow log).  Keys are
    /// emitted recursively sorted so snapshots diff cleanly across runs.
    pub fn metrics_json(&self) -> serde_json::Value {
        serde_json::json!({
            "cache": self.cache.stats().to_json(),
            "cache_entries": self.cache.len(),
            "cache_capacity": self.cache.capacity(),
            "hit_histogram": self.hit_histogram(),
            "memo": match &self.memo {
                Some(m) => m.stats_json(),
                None => serde_json::Value::Null,
            },
            "pruning": {
                "pruned_subsets": self.pruned_subsets.load(Ordering::Relaxed),
                "bound_evals": self.bound_evals.load(Ordering::Relaxed),
                "sharp_bound_evals": self.sharp_bound_evals.load(Ordering::Relaxed),
                "cheap_bound_skips": self.cheap_bound_skips.load(Ordering::Relaxed),
            },
            "telemetry": match &self.telemetry {
                Some(t) => t.snapshot_json(),
                None => serde_json::Value::Null,
            },
        })
        .sorted()
    }
}

/// Pack a fresh search's memo/pruning activity into one trace-span detail
/// word: memo hits in the high 32 bits, pruned subsets in the low 32
/// (each saturated).
fn search_detail(stats: &lec_core::SearchStats) -> u64 {
    let hits = stats.memo_hits.min(u32::MAX as u64);
    let pruned = stats.pruned_subsets.min(u32::MAX as u64);
    (hits << 32) | pruned
}

/// Append the environment fingerprints (memory distribution, mode, search
/// config) to a shape encoding, producing the final cache key.
pub(crate) fn key_with_env(encoding: &[u64], env: &[u64; 3]) -> Box<[u64]> {
    let mut key = Vec::with_capacity(encoding.len() + env.len());
    key.extend_from_slice(encoding);
    key.extend_from_slice(env);
    key.into_boxed_slice()
}

/// The leader's unconditional-publication obligation.  Dropping it
/// without completing — only possible when the search panicked out of
/// [`Optimizer::optimize`] — wakes the followers with
/// [`OptError::WorkerPanicked`] (the engine's own verdict for a search
/// that died mid-flight) while the panic keeps unwinding the leader; a
/// follower cohort can therefore never deadlock on a dead leader.
struct LeaderGuard<'c> {
    cache: &'c ShapeCache,
    exact_key: &'c [u64],
    completed: bool,
}

impl LeaderGuard<'_> {
    fn complete_ok(mut self, weak_key: Box<[u64]>, answer: CanonicalAnswer) -> CacheDecision {
        self.completed = true;
        self.cache.publish_answer(self.exact_key, weak_key, answer)
    }

    fn complete_err(mut self, error: ServeError) {
        self.completed = true;
        self.cache.publish_error(self.exact_key, error);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.cache
                .publish_error(self.exact_key, ServeError::Opt(OptError::WorkerPanicked));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;

    #[test]
    fn concurrent_server_serves_through_a_shared_reference() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory.clone());
        let first = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(first.decision, CacheDecision::Recomputed);
        let second = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(second.decision, CacheDecision::Served);
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(fresh.plan, second.plan);
        assert_eq!(fresh.cost.to_bits(), second.cost.to_bits());
    }

    #[test]
    fn scoped_clients_share_one_server() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = Arc::new(ConcurrentPlanServer::new(&cat, memory.clone()));
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = Arc::clone(&server);
                let q = &q;
                let fresh = &fresh;
                scope.spawn(move || {
                    let resp = server.serve(q, &Mode::AlgorithmC).unwrap();
                    assert_eq!(resp.plan, fresh.plan);
                    assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
                });
            }
        });
        let stats = server.cache_stats();
        assert_eq!(stats.lookups, 4);
        // Every response was answered by exactly one decision.
        assert_eq!(
            stats.served + stats.coalesced_followers + stats.revalidated + stats.recomputed,
            4
        );
        // However the four clients interleaved, exactly one DP ran.
        assert_eq!(stats.revalidated + stats.recomputed, 1);
    }

    #[test]
    fn refusal_reasons_and_pruning_totals_reach_the_metrics() {
        use lec_core::SearchConfig;
        // The pruning star's reductive spokes are interchangeable twins,
        // so the canonicalizer refuses it — the request still gets a real
        // (uncacheable) answer, and with pruning enabled that fresh search
        // contributes its bound counters to the lifetime totals.
        let (cat, q) = fixtures::pruning_star(9);
        let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
        let server = ConcurrentPlanServer::with_optimizer(
            Optimizer::new(&cat, memory)
                .with_search_config(SearchConfig::default().with_pruning(true)),
            DEFAULT_CACHE_CAPACITY,
        );
        let resp = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(resp.decision, CacheDecision::Uncacheable);
        assert!(resp.stats.pruned_subsets > 0, "the star must prune");
        let v = server.metrics_json();
        assert_eq!(v["cache"]["refusals"]["twin_tables"].as_f64(), Some(1.0));
        assert_eq!(
            v["cache"]["refusals"]["too_many_tables"].as_f64(),
            Some(0.0)
        );
        assert_eq!(v["cache"]["uncacheable"].as_f64(), Some(1.0));
        assert_eq!(
            v["pruning"]["pruned_subsets"].as_f64(),
            Some(resp.stats.pruned_subsets as f64)
        );
        assert_eq!(
            v["pruning"]["bound_evals"].as_f64(),
            Some(resp.stats.bound_evals as f64)
        );
        assert_eq!(
            v["pruning"]["sharp_bound_evals"].as_f64(),
            Some(resp.stats.sharp_bound_evals as f64)
        );
        assert_eq!(
            v["pruning"]["cheap_bound_skips"].as_f64(),
            Some(resp.stats.cheap_bound_skips as f64)
        );
        assert!(
            resp.stats.sharp_bound_evals + resp.stats.cheap_bound_skips > 0,
            "the tiered check must have run"
        );

        // An oversize query lands in the size-cap bucket.
        let (big_cat, big_q) = fixtures::pruning_chain(13);
        let server = ConcurrentPlanServer::new(
            &big_cat,
            lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap(),
        );
        server.serve(&big_q, &Mode::AlgorithmC).unwrap();
        let v = server.metrics_json();
        assert_eq!(
            v["cache"]["refusals"]["too_many_tables"].as_f64(),
            Some(1.0)
        );
    }

    struct CountingGate {
        admitted: AtomicU64,
        released: AtomicU64,
        deny: std::sync::atomic::AtomicBool,
        panic_in_search: std::sync::atomic::AtomicBool,
    }

    impl CountingGate {
        fn new() -> Self {
            CountingGate {
                admitted: AtomicU64::new(0),
                released: AtomicU64::new(0),
                deny: std::sync::atomic::AtomicBool::new(false),
                panic_in_search: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    impl ServeHooks for CountingGate {
        fn admit_cold(&self) -> bool {
            if self.deny.load(Ordering::SeqCst) {
                return false;
            }
            self.admitted.fetch_add(1, Ordering::SeqCst);
            true
        }
        fn release_cold(&self) {
            self.released.fetch_add(1, Ordering::SeqCst);
        }
        fn before_search(&self) {
            if self.panic_in_search.load(Ordering::SeqCst) {
                panic!("fault injection: leader killed mid-search");
            }
        }
    }

    #[test]
    fn gated_serve_pairs_admissions_with_releases_and_bypasses_warm_hits() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        let gate = CountingGate::new();
        let cold = server
            .serve_gated(&q, &Mode::AlgorithmC, &gate, None)
            .unwrap();
        assert_eq!(cold.decision, CacheDecision::Recomputed);
        assert_eq!(gate.admitted.load(Ordering::SeqCst), 1);
        assert_eq!(gate.released.load(Ordering::SeqCst), 1);
        // A warm hit never consults the gate — even one that would deny.
        gate.deny.store(true, Ordering::SeqCst);
        let warm = server
            .serve_gated(&q, &Mode::AlgorithmC, &gate, None)
            .unwrap();
        assert_eq!(warm.decision, CacheDecision::Served);
        assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(gate.admitted.load(Ordering::SeqCst), 1);
        // But a fresh shape is cold and gets shed.
        let (_, q2) = fixtures::three_chain();
        let renamed_mode = Mode::AlgorithmA; // different env fingerprint → cold
        assert!(matches!(
            server.serve_gated(&q2, &renamed_mode, &gate, None),
            Err(ServeError::Overloaded)
        ));
        assert_eq!(
            gate.released.load(Ordering::SeqCst),
            1,
            "no release on shed"
        );
    }

    #[test]
    fn a_shed_leader_tells_its_whole_cohort_and_leaves_the_key_healthy() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        let gate = CountingGate::new();
        gate.deny.store(true, Ordering::SeqCst);
        // Plant a follower by hand via the cache, then shed the leader.
        let form = canonical_form(server.optimizer.catalog(), &q).unwrap();
        let env = [
            server.memory_fp,
            Mode::AlgorithmC.fingerprint(),
            server.search_fp,
        ];
        let exact_key = key_with_env(&form.exact, &env);
        let ExactLookup::Lead(_lead) = server.cache.lookup_or_lead(&exact_key) else {
            panic!("fresh key must lead");
        };
        let ExactLookup::Follow(flight) = server.cache.lookup_or_lead(&exact_key) else {
            panic!("second miss must follow");
        };
        let waiter = std::thread::spawn(move || flight.wait());
        // Shed the in-flight leader by publishing what serve_gated would.
        server
            .cache
            .publish_error(&exact_key, ServeError::Overloaded);
        assert!(matches!(
            waiter.join().unwrap(),
            Err(ServeError::Overloaded)
        ));
        // The key is healthy: an ungated serve elects a fresh leader.
        let resp = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(resp.decision, CacheDecision::Recomputed);
    }

    #[test]
    fn a_follower_deadline_expires_without_cancelling_the_leader() {
        use std::time::Duration;
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        let form = canonical_form(server.optimizer.catalog(), &q).unwrap();
        let env = [
            server.memory_fp,
            Mode::AlgorithmC.fingerprint(),
            server.search_fp,
        ];
        let exact_key = key_with_env(&form.exact, &env);
        // Hold leadership so the gated request below must follow.
        let ExactLookup::Lead(_lead) = server.cache.lookup_or_lead(&exact_key) else {
            panic!("fresh key must lead");
        };
        let t0 = Instant::now();
        let got = server.serve_gated(
            &q,
            &Mode::AlgorithmC,
            &(),
            Some(Instant::now() + Duration::from_millis(30)),
        );
        assert!(matches!(got, Err(ServeError::DeadlineExceeded)));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // The leader is still in flight; completing it feeds the cache.
        let out = server.optimizer.optimize(&q, &Mode::AlgorithmC).unwrap();
        let canon_plan = out.plan.relabel_tables(&form.perm);
        server.cache.publish_answer(
            &exact_key,
            key_with_env(&form.weak, &env),
            CanonicalAnswer {
                plan: canon_plan,
                cost: out.cost,
                stats: out.stats,
            },
        );
        let warm = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(warm.decision, CacheDecision::Served);
        assert_eq!(warm.cost.to_bits(), out.cost.to_bits());
    }

    #[test]
    fn a_fault_killed_leader_reports_worker_panicked_and_releases_its_permit() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        let gate = CountingGate::new();
        gate.panic_in_search.store(true, Ordering::SeqCst);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = server.serve_gated(&q, &Mode::AlgorithmC, &gate, None);
        }));
        assert!(died.is_err(), "the injected panic propagates to the caller");
        assert_eq!(
            gate.released.load(Ordering::SeqCst),
            1,
            "the cold permit is released even across the panic"
        );
        // The cohort key was retired with WorkerPanicked; serving again works.
        gate.panic_in_search.store(false, Ordering::SeqCst);
        let resp = server
            .serve_gated(&q, &Mode::AlgorithmC, &gate, None)
            .unwrap();
        assert_eq!(resp.decision, CacheDecision::Recomputed);
    }

    #[test]
    fn leader_errors_reach_their_followers_only() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        // AlgorithmB with c = 0 is a BadParameter error surfaced *after*
        // leadership is taken — the publication path must retire the
        // in-flight record so the key stays serveable.
        let bad = Mode::AlgorithmB { c: 0 };
        assert!(matches!(
            server.serve(&q, &bad),
            Err(OptError::BadParameter(_))
        ));
        assert_eq!(server.cache_len(), 0);
        // The healthy mode on the same query is unaffected.
        let ok = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(ok.decision, CacheDecision::Recomputed);
        // And the failed key elects a fresh leader next time.
        assert!(matches!(
            server.serve(&q, &bad),
            Err(OptError::BadParameter(_))
        ));
    }

    #[test]
    fn telemetry_records_outcomes_spans_and_sorted_metrics() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let tel = Arc::new(lec_telemetry::Telemetry::on());
        let server = ConcurrentPlanServer::new(&cat, memory).with_telemetry(Arc::clone(&tel));
        // Cold miss lands in the `fresh` histogram, then a traced warm hit
        // in `served`.
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        let mut trace = tel.trace_ctx(7);
        let resp = server
            .serve_traced(&q, &Mode::AlgorithmC, &(), None, &mut trace)
            .unwrap();
        assert_eq!(resp.decision, CacheDecision::Served);
        tel.finish_request(&trace, Outcome::Served);
        assert_eq!(tel.outcome_snapshot(Outcome::Fresh).count(), 1);
        assert_eq!(tel.outcome_snapshot(Outcome::Served).count(), 1);
        // The warm hit's trace holds exactly one span: the cache probe,
        // closed with detail 0 (= hit).
        let rec = tel.ring().find(7).expect("trace retained in ring");
        assert_eq!(rec.spans.len(), 1);
        assert_eq!(rec.spans[0].stage, Stage::CacheProbe);
        assert_eq!(rec.spans[0].detail, 0);
        // The fresh search timed its engine internals.
        assert!(tel.engine().level_combine_ns.snapshot().count() > 0);
        // metrics_json folds the snapshot in, with keys recursively sorted.
        let v = server.metrics_json();
        assert_eq!(
            v["telemetry"]["latency"]["served"]["count"].as_f64(),
            Some(1.0)
        );
        fn assert_sorted(v: &serde_json::Value) {
            if let serde_json::Value::Object(pairs) = v {
                for w in pairs.windows(2) {
                    assert!(w[0].0 < w[1].0, "unsorted keys: {} >= {}", w[0].0, w[1].0);
                }
                for (_, inner) in pairs {
                    assert_sorted(inner);
                }
            }
        }
        assert_sorted(&v);
    }
}
