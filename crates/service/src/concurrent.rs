//! The concurrent serving front end: a [`ConcurrentPlanServer`] that many
//! client threads share through `&self`.
//!
//! The per-query engine underneath has been `Sync` since PR 2 (sharded
//! eval cache), PR 3 (persistent worker pool) and PR 4 (sharded subplan
//! memo); this module makes the *serving* layer match.  Three layers:
//!
//! 1. **Sharded plan cache** ([`crate::cache::ShapeCache`]): the
//!    exact/weak maps are lock-striped, so the hit path — the 97%+ common
//!    case on a skewed workload — takes one shard lock for a few hundred
//!    nanoseconds instead of serializing every client behind a global
//!    `&mut self`.
//! 2. **In-flight coalescing (singleflight)**: concurrent misses on the
//!    same exact canonical key elect one *leader* whose single DP answers
//!    the whole cohort; *followers* block on it and get the canonical
//!    answer relabeled into their own table numbering
//!    ([`CacheDecision::Coalesced`]).  A thundering herd on a cold hot
//!    key runs one search, not N.
//! 3. **Shared worker-pool discipline**: every search borrows threads
//!    from one [`lec_core::search::PersistentPool`] and probes one shared
//!    [`SubplanMemo`] — both already safe under concurrent use (the pool
//!    serializes fan-outs internally; the memo is sharded).  A leader
//!    whose search dies — an engine-reported
//!    [`OptError::WorkerPanicked`], or a panic unwinding out of the
//!    optimizer — fails **exactly its own followers** (each receives the
//!    error) and nothing else: the in-flight record is retired, the pool
//!    survives, and the next request on that key elects a fresh leader.
//!
//! Byte-identity is the same acceptance bar as every layer before it:
//! whatever the interleaving, every response (plan, cost bits, table
//! numbering) equals a fresh [`Optimizer::optimize`] of that request —
//! pinned by `tests/concurrent_parity.rs` and the `concurrent_serve`
//! bench guard.
//!
//! ```
//! use std::sync::Arc;
//! use lec_core::{fixtures, Mode};
//! use lec_service::{CacheDecision, ConcurrentPlanServer};
//!
//! let (catalog, query) = fixtures::three_chain();
//! let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
//! let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory));
//!
//! // Many clients, one server, `&self` all the way down.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let server = Arc::clone(&server);
//!         let query = query.clone();
//!         scope.spawn(move || {
//!             let resp = server.serve(&query, &Mode::AlgorithmC).unwrap();
//!             assert!(resp.cost > 0.0);
//!         });
//!     }
//! });
//! assert_eq!(server.cache_stats().lookups, 4);
//! ```

use crate::cache::{CacheDecision, CacheStats, CanonicalAnswer, ExactLookup, ShapeCache};
use crate::server::{ServeResponse, DEFAULT_CACHE_CAPACITY};
use lec_canon::canonical_form;
use lec_catalog::Catalog;
use lec_core::search::{PersistentPool, SubplanMemo, WorkerPool};
use lec_core::{Mode, OptError, Optimizer};
use lec_cost::dist_fingerprint;
use lec_plan::Query;
use lec_prob::Distribution;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A long-lived, thread-shared query-optimization service over one
/// catalog and memory belief.
///
/// Where [`crate::PlanServer`] answers one client at a time (`&mut
/// self`), this server is the multi-client front end: [`serve`] takes
/// `&self`, so any number of threads share one instance (typically
/// `Arc<ConcurrentPlanServer>`, or plain borrows under
/// [`std::thread::scope`]).  See the [module docs](self) for the three
/// layers — sharded cache, singleflight coalescing, shared pool/memo —
/// and the byte-identity contract.
///
/// [`serve`]: ConcurrentPlanServer::serve
#[derive(Debug)]
pub struct ConcurrentPlanServer<'a> {
    optimizer: Optimizer<'a>,
    cache: ShapeCache,
    memo: Option<Arc<SubplanMemo>>,
    memory_fp: u64,
    search_fp: u64,
    /// Lifetime total of subsets discarded by branch-and-bound pruning
    /// across every fresh search this server ran (served/coalesced
    /// responses reuse an already-counted search).
    pruned_subsets: AtomicU64,
    /// Lifetime total of lower-bound evaluations across fresh searches.
    bound_evals: AtomicU64,
}

/// The whole point: one server instance is shared by every client thread.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<ConcurrentPlanServer<'static>>();
};

impl<'a> ConcurrentPlanServer<'a> {
    /// A server over `catalog` believing `memory`, with the default cache
    /// capacity, a persistent worker pool sized to the host, and a shared
    /// cross-search subplan memo — the same defaults as
    /// [`crate::PlanServer::new`].
    pub fn new(catalog: &'a Catalog, memory: Distribution) -> Self {
        let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::for_host());
        let memo = Arc::new(SubplanMemo::default());
        Self::with_optimizer(
            Optimizer::new(catalog, memory)
                .with_worker_pool(pool)
                .with_subplan_memo(memo),
            DEFAULT_CACHE_CAPACITY,
        )
    }

    /// A server around an explicitly configured optimizer (search config,
    /// worker pool, subplan memo) and cache capacity.
    pub fn with_optimizer(optimizer: Optimizer<'a>, cache_capacity: usize) -> Self {
        let memory_fp = dist_fingerprint(optimizer.memory());
        let search_fp = optimizer.search_config().fingerprint();
        let memo = optimizer.search_config().memo.clone();
        ConcurrentPlanServer {
            optimizer,
            cache: ShapeCache::new(cache_capacity),
            memo,
            memory_fp,
            search_fp,
            pruned_subsets: AtomicU64::new(0),
            bound_evals: AtomicU64::new(0),
        }
    }

    /// Fold one fresh search's pruning counters into the lifetime totals.
    fn count_search(&self, stats: &lec_core::SearchStats) {
        self.pruned_subsets
            .fetch_add(stats.pruned_subsets, Ordering::Relaxed);
        self.bound_evals
            .fetch_add(stats.bound_evals, Ordering::Relaxed);
    }

    /// The optimizer answering cache misses.
    pub fn optimizer(&self) -> &Optimizer<'a> {
        &self.optimizer
    }

    /// A snapshot of the lifetime cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Per-entry exact-hit counters, descending.
    pub fn hit_histogram(&self) -> Vec<u64> {
        self.cache.hit_histogram()
    }

    /// The cross-search subplan memo backing this server's searches, if
    /// one is installed.
    pub fn subplan_memo(&self) -> Option<&Arc<SubplanMemo>> {
        self.memo.as_ref()
    }

    /// Answer one optimization request; safe to call from any number of
    /// threads concurrently.
    ///
    /// The response is byte-identical (plan, cost bits, table numbering)
    /// to a fresh [`Optimizer::optimize`] of the same request whatever
    /// the cache decided and however the calls interleaved.  Concurrent
    /// misses on the same exact canonical key run **one** search: the
    /// leader's, whose [`CacheDecision`] is `Recomputed`/`Revalidated` as
    /// usual, while every follower reports [`CacheDecision::Coalesced`]
    /// and carries the leader's counters with `elapsed` re-stamped to its
    /// own wait.  A leader that fails (or panics) propagates the error to
    /// exactly its own followers — coalesced cohorts on other keys never
    /// notice.
    pub fn serve(&self, query: &Query, mode: &Mode) -> Result<ServeResponse, OptError> {
        let t0 = Instant::now();
        query
            .validate(self.optimizer.catalog())
            .map_err(OptError::InvalidQuery)?;
        self.cache.count_lookup();

        // Serving a cached (or coalesced) plan to a renamed request is
        // only sound when the mode commutes with table renaming — see
        // `PlanServer::serve`; the refusals are identical here.
        let cacheable_mode = !matches!(
            mode,
            Mode::IterativeImprovement { .. } | Mode::SimulatedAnnealing { .. }
        );
        let form = if cacheable_mode {
            match canonical_form(self.optimizer.catalog(), query) {
                Ok(form) => Some(form),
                Err(reason) => {
                    // Counts as uncacheable *and* under its reason, so the
                    // metrics can distinguish "workload outgrew the
                    // canonicalizer" from "queries are too symmetric".
                    self.cache.count_refusal(reason);
                    None
                }
            }
        } else {
            self.cache.count_uncacheable();
            None
        };
        let Some(form) = form else {
            let out = self.optimizer.optimize(query, mode)?;
            self.count_search(&out.stats);
            return Ok(ServeResponse {
                plan: out.plan,
                cost: out.cost,
                mode: out.mode,
                stats: out.stats,
                decision: CacheDecision::Uncacheable,
            });
        };

        let env = [self.memory_fp, mode.fingerprint(), self.search_fp];
        let exact_key = key_with_env(&form.exact, &env);
        let weak_key = key_with_env(&form.weak, &env);

        match self.cache.lookup_or_lead(&exact_key) {
            ExactLookup::Hit(answer) => {
                let plan = answer.plan.relabel_tables(&form.inverse_perm());
                let mut stats = answer.stats;
                stats.elapsed = t0.elapsed();
                Ok(ServeResponse {
                    plan,
                    cost: answer.cost,
                    mode: mode.name(),
                    stats,
                    decision: CacheDecision::Served,
                })
            }
            ExactLookup::Follow(flight) => {
                let answer = flight.wait()?;
                let plan = answer.plan.relabel_tables(&form.inverse_perm());
                let mut stats = answer.stats;
                stats.elapsed = t0.elapsed();
                Ok(ServeResponse {
                    plan,
                    cost: answer.cost,
                    mode: mode.name(),
                    stats,
                    decision: CacheDecision::Coalesced,
                })
            }
            ExactLookup::Lead(_flight) => {
                // From here on this thread owes the cohort a publication;
                // the guard pays the debt with `WorkerPanicked` if the
                // search unwinds past us.
                let guard = LeaderGuard {
                    cache: &self.cache,
                    exact_key: &exact_key,
                    completed: false,
                };
                match self.optimizer.optimize(query, mode) {
                    Ok(out) => {
                        self.count_search(&out.stats);
                        let canon_plan = out.plan.relabel_tables(&form.perm);
                        let decision = guard.complete_ok(
                            weak_key,
                            CanonicalAnswer {
                                plan: canon_plan,
                                cost: out.cost,
                                stats: out.stats,
                            },
                        );
                        let mut stats = out.stats;
                        stats.elapsed = t0.elapsed();
                        Ok(ServeResponse {
                            plan: out.plan,
                            cost: out.cost,
                            mode: out.mode,
                            stats,
                            decision,
                        })
                    }
                    Err(e) => {
                        guard.complete_err(e.clone());
                        Err(e)
                    }
                }
            }
        }
    }

    /// Machine-readable service metrics: cache counters (coalescing and
    /// per-reason canonicalizer refusals included), occupancy, the
    /// exact-hit skew histogram, the subplan memo's counters (`null` when
    /// no memo is installed), and lifetime branch-and-bound pruning
    /// totals across every fresh search.
    pub fn metrics_json(&self) -> serde_json::Value {
        serde_json::json!({
            "cache": self.cache.stats().to_json(),
            "cache_entries": self.cache.len(),
            "cache_capacity": self.cache.capacity(),
            "hit_histogram": self.hit_histogram(),
            "memo": match &self.memo {
                Some(m) => m.stats_json(),
                None => serde_json::Value::Null,
            },
            "pruning": {
                "pruned_subsets": self.pruned_subsets.load(Ordering::Relaxed),
                "bound_evals": self.bound_evals.load(Ordering::Relaxed),
            },
        })
    }
}

/// Append the environment fingerprints (memory distribution, mode, search
/// config) to a shape encoding, producing the final cache key.
pub(crate) fn key_with_env(encoding: &[u64], env: &[u64; 3]) -> Box<[u64]> {
    let mut key = Vec::with_capacity(encoding.len() + env.len());
    key.extend_from_slice(encoding);
    key.extend_from_slice(env);
    key.into_boxed_slice()
}

/// The leader's unconditional-publication obligation.  Dropping it
/// without completing — only possible when the search panicked out of
/// [`Optimizer::optimize`] — wakes the followers with
/// [`OptError::WorkerPanicked`] (the engine's own verdict for a search
/// that died mid-flight) while the panic keeps unwinding the leader; a
/// follower cohort can therefore never deadlock on a dead leader.
struct LeaderGuard<'c> {
    cache: &'c ShapeCache,
    exact_key: &'c [u64],
    completed: bool,
}

impl LeaderGuard<'_> {
    fn complete_ok(mut self, weak_key: Box<[u64]>, answer: CanonicalAnswer) -> CacheDecision {
        self.completed = true;
        self.cache.publish_answer(self.exact_key, weak_key, answer)
    }

    fn complete_err(mut self, error: OptError) {
        self.completed = true;
        self.cache.publish_error(self.exact_key, error);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.cache
                .publish_error(self.exact_key, OptError::WorkerPanicked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;

    #[test]
    fn concurrent_server_serves_through_a_shared_reference() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory.clone());
        let first = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(first.decision, CacheDecision::Recomputed);
        let second = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(second.decision, CacheDecision::Served);
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(fresh.plan, second.plan);
        assert_eq!(fresh.cost.to_bits(), second.cost.to_bits());
    }

    #[test]
    fn scoped_clients_share_one_server() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = Arc::new(ConcurrentPlanServer::new(&cat, memory.clone()));
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = Arc::clone(&server);
                let q = &q;
                let fresh = &fresh;
                scope.spawn(move || {
                    let resp = server.serve(q, &Mode::AlgorithmC).unwrap();
                    assert_eq!(resp.plan, fresh.plan);
                    assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
                });
            }
        });
        let stats = server.cache_stats();
        assert_eq!(stats.lookups, 4);
        // Every response was answered by exactly one decision.
        assert_eq!(
            stats.served + stats.coalesced_followers + stats.revalidated + stats.recomputed,
            4
        );
        // However the four clients interleaved, exactly one DP ran.
        assert_eq!(stats.revalidated + stats.recomputed, 1);
    }

    #[test]
    fn refusal_reasons_and_pruning_totals_reach_the_metrics() {
        use lec_core::SearchConfig;
        // The pruning star's reductive spokes are interchangeable twins,
        // so the canonicalizer refuses it — the request still gets a real
        // (uncacheable) answer, and with pruning enabled that fresh search
        // contributes its bound counters to the lifetime totals.
        let (cat, q) = fixtures::pruning_star(9);
        let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
        let server = ConcurrentPlanServer::with_optimizer(
            Optimizer::new(&cat, memory)
                .with_search_config(SearchConfig::default().with_pruning(true)),
            DEFAULT_CACHE_CAPACITY,
        );
        let resp = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(resp.decision, CacheDecision::Uncacheable);
        assert!(resp.stats.pruned_subsets > 0, "the star must prune");
        let v = server.metrics_json();
        assert_eq!(v["cache"]["refusals"]["twin_tables"].as_f64(), Some(1.0));
        assert_eq!(
            v["cache"]["refusals"]["too_many_tables"].as_f64(),
            Some(0.0)
        );
        assert_eq!(v["cache"]["uncacheable"].as_f64(), Some(1.0));
        assert_eq!(
            v["pruning"]["pruned_subsets"].as_f64(),
            Some(resp.stats.pruned_subsets as f64)
        );
        assert_eq!(
            v["pruning"]["bound_evals"].as_f64(),
            Some(resp.stats.bound_evals as f64)
        );

        // An oversize query lands in the size-cap bucket.
        let (big_cat, big_q) = fixtures::pruning_chain(13);
        let server = ConcurrentPlanServer::new(
            &big_cat,
            lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap(),
        );
        server.serve(&big_q, &Mode::AlgorithmC).unwrap();
        let v = server.metrics_json();
        assert_eq!(
            v["cache"]["refusals"]["too_many_tables"].as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn leader_errors_reach_their_followers_only() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let server = ConcurrentPlanServer::new(&cat, memory);
        // AlgorithmB with c = 0 is a BadParameter error surfaced *after*
        // leadership is taken — the publication path must retire the
        // in-flight record so the key stays serveable.
        let bad = Mode::AlgorithmB { c: 0 };
        assert!(matches!(
            server.serve(&q, &bad),
            Err(OptError::BadParameter(_))
        ));
        assert_eq!(server.cache_len(), 0);
        // The healthy mode on the same query is unaffected.
        let ok = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(ok.decision, CacheDecision::Recomputed);
        // And the failed key elects a fresh leader next time.
        assert!(matches!(
            server.serve(&q, &bad),
            Err(OptError::BadParameter(_))
        ));
    }
}
