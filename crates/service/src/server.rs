//! The serving layer: a [`PlanServer`] answering streams of optimization
//! requests through the canonical-shape cache and a persistent worker
//! pool.
//!
//! Since PR 5 the single-client `PlanServer` is a thin facade over the
//! thread-shared [`ConcurrentPlanServer`] — same sharded cache, same
//! singleflight machinery (which simply never sees a follower when one
//! client calls through `&mut self`), one implementation to test.

use crate::cache::{CacheDecision, CacheStats};
use crate::concurrent::ConcurrentPlanServer;
use lec_catalog::Catalog;
use lec_core::search::SubplanMemo;
use lec_core::{Mode, OptError, Optimizer, SearchStats};
use lec_plan::{PlanNode, Query};
use lec_prob::Distribution;
use std::sync::Arc;

/// Default number of cached plans.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// One answered request: the plan in the *caller's* table numbering, its
/// objective value, the search statistics behind it, and what the cache
/// did.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The chosen plan, relabeled to the request's table indices.
    pub plan: PlanNode,
    /// Its objective value (point cost for LSC, expected cost otherwise).
    pub cost: f64,
    /// Mode display name.
    pub mode: &'static str,
    /// Statistics of the search that produced the plan.  For
    /// [`CacheDecision::Served`] and [`CacheDecision::Coalesced`]
    /// responses these are the *original* computation's counters with
    /// `elapsed` re-stamped to this request's serve latency (the whole
    /// point of serving from cache or coalescing onto a leader).
    pub stats: SearchStats,
    /// How the cache participated.
    pub decision: CacheDecision,
}

impl ServeResponse {
    /// Machine-readable form (the per-response record of the metrics
    /// stream).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "mode": self.mode,
            "plan": self.plan.compact(),
            "cost": self.cost,
            "decision": self.decision.name(),
            "stats": self.stats.to_json(),
        })
    }
}

/// A long-lived query-optimization service over one catalog and memory
/// belief.
///
/// `PlanServer` is the workload-level face of the repo: where
/// [`Optimizer`] answers one query, the server answers a *stream*,
/// carrying two pieces of cross-query state the per-query facade cannot:
///
/// * a **canonical-shape plan cache** (see [`crate::canon`]): requests
///   that are table-renamings of an already-optimized shape are answered
///   by relabeling the cached plan — no DP at all — and near-misses
///   (same bucketed shape, drifted parameters) revalidate the cached plan
///   against one fresh search instead of silently trusting it;
/// * a **persistent worker pool**
///   ([`lec_core::search::PersistentPool`]): searches borrow long-lived
///   parked threads instead of spawning a scoped pool, so even sub-100µs
///   queries can fan out.
///
/// Responses are **byte-identical** to what a fresh
/// [`Optimizer::optimize`] would return for the same request — plan, cost
/// bits, table numbering — whatever the cache decided; the `server_parity`
/// integration test pins this over a 500-query skewed workload.
///
/// This facade serves one client at a time (`&mut self`); for many client
/// threads sharing one server through `&self`, use the underlying
/// [`ConcurrentPlanServer`] (also reachable via [`PlanServer::concurrent`]).
#[derive(Debug)]
pub struct PlanServer<'a> {
    inner: ConcurrentPlanServer<'a>,
}

impl<'a> PlanServer<'a> {
    /// A server over `catalog` believing `memory`, with the default cache
    /// capacity, a persistent pool sized to the host, and a shared
    /// cross-search subplan memo: even requests the whole-request cache
    /// cannot answer (cold different-shaped queries, weak-hit
    /// revalidations) reuse the DP nodes their subquery shapes share with
    /// everything served before.
    pub fn new(catalog: &'a Catalog, memory: Distribution) -> Self {
        PlanServer {
            inner: ConcurrentPlanServer::new(catalog, memory),
        }
    }

    /// A server around an explicitly configured optimizer (search config,
    /// worker pool, subplan memo) and cache capacity.
    pub fn with_optimizer(optimizer: Optimizer<'a>, cache_capacity: usize) -> Self {
        PlanServer {
            inner: ConcurrentPlanServer::with_optimizer(optimizer, cache_capacity),
        }
    }

    /// The thread-shared server underneath, for callers graduating from
    /// one client to many: every cache entry, memo record and counter is
    /// shared between the two views.
    pub fn concurrent(&self) -> &ConcurrentPlanServer<'a> {
        &self.inner
    }

    /// The optimizer answering cache misses.
    pub fn optimizer(&self) -> &Optimizer<'a> {
        self.inner.optimizer()
    }

    /// A snapshot of the lifetime cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache_len()
    }

    /// Per-entry exact-hit counters, descending.
    pub fn hit_histogram(&self) -> Vec<u64> {
        self.inner.hit_histogram()
    }

    /// Answer one optimization request.
    pub fn serve(&mut self, query: &Query, mode: &Mode) -> Result<ServeResponse, OptError> {
        self.inner.serve(query, mode)
    }

    /// Answer a batch of requests in order, stopping at the first error.
    pub fn serve_batch(
        &mut self,
        requests: &[(Query, Mode)],
    ) -> Result<Vec<ServeResponse>, OptError> {
        requests.iter().map(|(q, m)| self.serve(q, m)).collect()
    }

    /// The cross-search subplan memo backing this server's searches, if
    /// one is installed.
    pub fn subplan_memo(&self) -> Option<&Arc<SubplanMemo>> {
        self.inner.subplan_memo()
    }

    /// Machine-readable service metrics: cache counters, occupancy, the
    /// exact-hit skew histogram, and the subplan memo's counters (`null`
    /// when no memo is installed).
    pub fn metrics_json(&self) -> serde_json::Value {
        self.inner.metrics_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;

    #[test]
    fn repeat_requests_are_served_from_cache_byte_identically() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        let first = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(first.decision, CacheDecision::Recomputed);
        let second = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(second.decision, CacheDecision::Served);
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());
        // And both match a fresh, cache-free optimization.
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(fresh.plan, second.plan);
        assert_eq!(fresh.cost.to_bits(), second.cost.to_bits());
        assert_eq!(server.cache_stats().served, 1);
        assert_eq!(server.cache_stats().recomputed, 1);
        assert_eq!(server.hit_histogram(), vec![1]);
    }

    #[test]
    fn renamed_requests_hit_the_same_entry() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        let map = [2usize, 0, 1];
        let renamed = q.relabel_tables(&map);
        let served = server.serve(&renamed, &Mode::AlgorithmC).unwrap();
        assert_eq!(served.decision, CacheDecision::Served);
        // The served plan must match a fresh optimization of the renamed
        // query — table numbering included.
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&renamed, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(served.plan, fresh.plan);
        assert_eq!(served.cost.to_bits(), fresh.cost.to_bits());
    }

    #[test]
    fn distinct_modes_and_memories_do_not_share_entries() {
        let (cat, q) = fixtures::three_chain();
        let m1 = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let m2 = lec_prob::presets::spread_family(900.0, 0.4, 4).unwrap();
        let mut s1 = PlanServer::new(&cat, m1.clone());
        s1.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(
            s1.serve(&q, &Mode::Bushy).unwrap().decision,
            CacheDecision::Recomputed,
            "a different mode is a different key"
        );
        let mut s2 = PlanServer::new(&cat, m2);
        assert_eq!(
            s2.serve(&q, &Mode::AlgorithmC).unwrap().decision,
            CacheDecision::Recomputed,
            "a different memory belief is a different key"
        );
        let _ = m1;
    }

    #[test]
    fn near_miss_revalidates_instead_of_trusting_the_cache() {
        let (cat, mut q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        // Drift a selectivity within its log2 bucket: same weak shape,
        // different exact computation.
        let drifted = q.joins[0].selectivity.mean() * 1.01;
        q.joins[0].selectivity = lec_prob::Distribution::point(drifted);
        let resp = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(resp.decision, CacheDecision::Revalidated);
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(resp.plan, fresh.plan);
        assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
    }

    #[test]
    fn randomized_modes_bypass_the_cache() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        let mode = Mode::IterativeImprovement {
            config: lec_core::RandomizedConfig::default(),
            seed: 7,
        };
        for _ in 0..2 {
            let resp = server.serve(&q, &mode).unwrap();
            assert_eq!(resp.decision, CacheDecision::Uncacheable);
        }
        assert_eq!(server.cache_len(), 0);
        assert_eq!(server.cache_stats().uncacheable, 2);
    }

    #[test]
    fn invalid_queries_are_rejected_before_touching_the_cache() {
        let (cat, mut q) = fixtures::three_chain();
        q.joins.clear();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        assert!(matches!(
            server.serve(&q, &Mode::AlgorithmC),
            Err(OptError::InvalidQuery(_))
        ));
        assert_eq!(server.cache_stats().lookups, 0);
    }

    #[test]
    fn metrics_are_machine_readable() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        let v = server.metrics_json();
        assert_eq!(v["cache"]["served"].as_f64(), Some(1.0));
        assert_eq!(v["cache"]["coalesced_followers"].as_f64(), Some(0.0));
        assert_eq!(v["cache_entries"].as_f64(), Some(1.0));
        assert_eq!(v["hit_histogram"][0].as_f64(), Some(1.0));
    }
}
