//! The serving layer: a [`PlanServer`] answering streams of optimization
//! requests through the canonical-shape cache and a persistent worker
//! pool.

use crate::cache::{CacheDecision, CacheStats, ShapeCache};
use lec_canon::canonical_form;
use lec_catalog::Catalog;
use lec_core::search::{PersistentPool, SubplanMemo, WorkerPool};
use lec_core::{Mode, OptError, Optimizer, SearchStats};
use lec_cost::dist_fingerprint;
use lec_plan::{PlanNode, Query};
use lec_prob::Distribution;
use std::sync::Arc;
use std::time::Instant;

/// Default number of cached plans.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// One answered request: the plan in the *caller's* table numbering, its
/// objective value, the search statistics behind it, and what the cache
/// did.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The chosen plan, relabeled to the request's table indices.
    pub plan: PlanNode,
    /// Its objective value (point cost for LSC, expected cost otherwise).
    pub cost: f64,
    /// Mode display name.
    pub mode: &'static str,
    /// Statistics of the search that produced the plan.  For
    /// [`CacheDecision::Served`] responses these are the *original*
    /// computation's counters with `elapsed` re-stamped to this request's
    /// serve latency (the whole point of serving from cache).
    pub stats: SearchStats,
    /// How the cache participated.
    pub decision: CacheDecision,
}

impl ServeResponse {
    /// Machine-readable form (the per-response record of the metrics
    /// stream).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "mode": self.mode,
            "plan": self.plan.compact(),
            "cost": self.cost,
            "decision": self.decision.name(),
            "stats": self.stats.to_json(),
        })
    }
}

/// A long-lived query-optimization service over one catalog and memory
/// belief.
///
/// `PlanServer` is the workload-level face of the repo: where
/// [`Optimizer`] answers one query, the server answers a *stream*,
/// carrying two pieces of cross-query state the per-query facade cannot:
///
/// * a **canonical-shape plan cache** (see [`crate::canon`]): requests
///   that are table-renamings of an already-optimized shape are answered
///   by relabeling the cached plan — no DP at all — and near-misses
///   (same bucketed shape, drifted parameters) revalidate the cached plan
///   against one fresh search instead of silently trusting it;
/// * a **persistent worker pool** ([`PersistentPool`]): searches borrow
///   long-lived parked threads instead of spawning a scoped pool, so even
///   sub-100µs queries can fan out.
///
/// Responses are **byte-identical** to what a fresh
/// [`Optimizer::optimize`] would return for the same request — plan, cost
/// bits, table numbering — whatever the cache decided; the `server_parity`
/// integration test pins this over a 500-query skewed workload.
#[derive(Debug)]
pub struct PlanServer<'a> {
    optimizer: Optimizer<'a>,
    cache: ShapeCache,
    memo: Option<Arc<SubplanMemo>>,
    memory_fp: u64,
    search_fp: u64,
}

impl<'a> PlanServer<'a> {
    /// A server over `catalog` believing `memory`, with the default cache
    /// capacity, a persistent pool sized to the host, and a shared
    /// cross-search subplan memo: even requests the whole-request cache
    /// cannot answer (cold different-shaped queries, weak-hit
    /// revalidations) reuse the DP nodes their subquery shapes share with
    /// everything served before.
    pub fn new(catalog: &'a Catalog, memory: Distribution) -> Self {
        let pool: Arc<dyn WorkerPool> = Arc::new(PersistentPool::for_host());
        let memo = Arc::new(SubplanMemo::default());
        Self::with_optimizer(
            Optimizer::new(catalog, memory)
                .with_worker_pool(pool)
                .with_subplan_memo(memo),
            DEFAULT_CACHE_CAPACITY,
        )
    }

    /// A server around an explicitly configured optimizer (search config,
    /// worker pool, subplan memo) and cache capacity.
    pub fn with_optimizer(optimizer: Optimizer<'a>, cache_capacity: usize) -> Self {
        let memory_fp = dist_fingerprint(optimizer.memory());
        let search_fp = optimizer.search_config().fingerprint();
        let memo = optimizer.search_config().memo.clone();
        PlanServer {
            optimizer,
            cache: ShapeCache::new(cache_capacity),
            memo,
            memory_fp,
            search_fp,
        }
    }

    /// The optimizer answering cache misses.
    pub fn optimizer(&self) -> &Optimizer<'a> {
        &self.optimizer
    }

    /// Lifetime cache counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Per-entry exact-hit counters, descending.
    pub fn hit_histogram(&self) -> Vec<u64> {
        self.cache.hit_histogram()
    }

    /// Answer one optimization request.
    pub fn serve(&mut self, query: &Query, mode: &Mode) -> Result<ServeResponse, OptError> {
        let t0 = Instant::now();
        query
            .validate(self.optimizer.catalog())
            .map_err(OptError::InvalidQuery)?;
        self.cache.stats.lookups += 1;

        // Serving a cached plan to a renamed request is only sound when
        // the mode commutes with table renaming.  The keep-best family
        // does (exact cost ties resolve by label-independent plan shape —
        // see `insert_entry_shaped`), and Algorithm B's top-c frontier
        // now orders its candidate lists the same way (`TopCPolicy`
        // truncates under `(cost, plan_shape_cmp)` instead of arrival
        // order), so it is cacheable too; only the randomized modes — RNG
        // trajectories over table indices — can legitimately return
        // different (equal-cost) plans for isomorphic queries and bypass
        // the cache.
        let cacheable_mode = !matches!(
            mode,
            Mode::IterativeImprovement { .. } | Mode::SimulatedAnnealing { .. }
        );
        let form = if cacheable_mode {
            canonical_form(self.optimizer.catalog(), query)
        } else {
            None
        };
        let Some(form) = form else {
            self.cache.stats.uncacheable += 1;
            let out = self.optimizer.optimize(query, mode)?;
            return Ok(ServeResponse {
                plan: out.plan,
                cost: out.cost,
                mode: out.mode,
                stats: out.stats,
                decision: CacheDecision::Uncacheable,
            });
        };

        let env = [self.memory_fp, mode.fingerprint(), self.search_fp];
        let exact_key = key_with_env(&form.exact, &env);
        let weak_key = key_with_env(&form.weak, &env);

        if let Some(entry) = self.cache.get_exact(&exact_key) {
            let plan = entry.plan.relabel_tables(&form.inverse_perm());
            let cost = entry.cost;
            let mut stats = entry.stats;
            self.cache.stats.served += 1;
            stats.elapsed = t0.elapsed();
            return Ok(ServeResponse {
                plan,
                cost,
                mode: mode.name(),
                stats,
                decision: CacheDecision::Served,
            });
        }

        let out = self.optimizer.optimize(query, mode)?;
        let canon_plan = out.plan.relabel_tables(&form.perm);
        let decision = match self.cache.weak_plan(&weak_key) {
            Some(prev) if *prev == canon_plan => CacheDecision::Revalidated,
            _ => CacheDecision::Recomputed,
        };
        match decision {
            CacheDecision::Revalidated => self.cache.stats.revalidated += 1,
            _ => self.cache.stats.recomputed += 1,
        }
        self.cache
            .insert(exact_key, weak_key, canon_plan, out.cost, out.stats);
        let mut stats = out.stats;
        stats.elapsed = t0.elapsed();
        Ok(ServeResponse {
            plan: out.plan,
            cost: out.cost,
            mode: out.mode,
            stats,
            decision,
        })
    }

    /// Answer a batch of requests in order, stopping at the first error.
    pub fn serve_batch(
        &mut self,
        requests: &[(Query, Mode)],
    ) -> Result<Vec<ServeResponse>, OptError> {
        requests.iter().map(|(q, m)| self.serve(q, m)).collect()
    }

    /// The cross-search subplan memo backing this server's searches, if
    /// one is installed.
    pub fn subplan_memo(&self) -> Option<&Arc<SubplanMemo>> {
        self.memo.as_ref()
    }

    /// Machine-readable service metrics: cache counters, occupancy, the
    /// exact-hit skew histogram, and the subplan memo's counters (`null`
    /// when no memo is installed).
    pub fn metrics_json(&self) -> serde_json::Value {
        serde_json::json!({
            "cache": self.cache.stats().to_json(),
            "cache_entries": self.cache.len(),
            "cache_capacity": self.cache.capacity(),
            "hit_histogram": self.hit_histogram(),
            "memo": match &self.memo {
                Some(m) => m.stats_json(),
                None => serde_json::Value::Null,
            },
        })
    }
}

/// Append the environment fingerprints (memory distribution, mode, search
/// config) to a shape encoding, producing the final cache key.
fn key_with_env(encoding: &[u64], env: &[u64; 3]) -> Box<[u64]> {
    let mut key = Vec::with_capacity(encoding.len() + env.len());
    key.extend_from_slice(encoding);
    key.extend_from_slice(env);
    key.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;

    #[test]
    fn repeat_requests_are_served_from_cache_byte_identically() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        let first = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(first.decision, CacheDecision::Recomputed);
        let second = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(second.decision, CacheDecision::Served);
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());
        // And both match a fresh, cache-free optimization.
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(fresh.plan, second.plan);
        assert_eq!(fresh.cost.to_bits(), second.cost.to_bits());
        assert_eq!(server.cache_stats().served, 1);
        assert_eq!(server.cache_stats().recomputed, 1);
        assert_eq!(server.hit_histogram(), vec![1]);
    }

    #[test]
    fn renamed_requests_hit_the_same_entry() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        let map = [2usize, 0, 1];
        let renamed = q.relabel_tables(&map);
        let served = server.serve(&renamed, &Mode::AlgorithmC).unwrap();
        assert_eq!(served.decision, CacheDecision::Served);
        // The served plan must match a fresh optimization of the renamed
        // query — table numbering included.
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&renamed, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(served.plan, fresh.plan);
        assert_eq!(served.cost.to_bits(), fresh.cost.to_bits());
    }

    #[test]
    fn distinct_modes_and_memories_do_not_share_entries() {
        let (cat, q) = fixtures::three_chain();
        let m1 = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let m2 = lec_prob::presets::spread_family(900.0, 0.4, 4).unwrap();
        let mut s1 = PlanServer::new(&cat, m1.clone());
        s1.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(
            s1.serve(&q, &Mode::Bushy).unwrap().decision,
            CacheDecision::Recomputed,
            "a different mode is a different key"
        );
        let mut s2 = PlanServer::new(&cat, m2);
        assert_eq!(
            s2.serve(&q, &Mode::AlgorithmC).unwrap().decision,
            CacheDecision::Recomputed,
            "a different memory belief is a different key"
        );
        let _ = m1;
    }

    #[test]
    fn near_miss_revalidates_instead_of_trusting_the_cache() {
        let (cat, mut q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        // Drift a selectivity within its log2 bucket: same weak shape,
        // different exact computation.
        let drifted = q.joins[0].selectivity.mean() * 1.01;
        q.joins[0].selectivity = lec_prob::Distribution::point(drifted);
        let resp = server.serve(&q, &Mode::AlgorithmC).unwrap();
        assert_eq!(resp.decision, CacheDecision::Revalidated);
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&q, &Mode::AlgorithmC)
            .unwrap();
        assert_eq!(resp.plan, fresh.plan);
        assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
    }

    #[test]
    fn randomized_modes_bypass_the_cache() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        let mode = Mode::IterativeImprovement {
            config: lec_core::RandomizedConfig::default(),
            seed: 7,
        };
        for _ in 0..2 {
            let resp = server.serve(&q, &mode).unwrap();
            assert_eq!(resp.decision, CacheDecision::Uncacheable);
        }
        assert_eq!(server.cache_len(), 0);
        assert_eq!(server.cache_stats().uncacheable, 2);
    }

    #[test]
    fn invalid_queries_are_rejected_before_touching_the_cache() {
        let (cat, mut q) = fixtures::three_chain();
        q.joins.clear();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        assert!(matches!(
            server.serve(&q, &Mode::AlgorithmC),
            Err(OptError::InvalidQuery(_))
        ));
        assert_eq!(server.cache_stats().lookups, 0);
    }

    #[test]
    fn metrics_are_machine_readable() {
        let (cat, q) = fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory);
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        server.serve(&q, &Mode::AlgorithmC).unwrap();
        let v = server.metrics_json();
        assert_eq!(v["cache"]["served"].as_f64(), Some(1.0));
        assert_eq!(v["cache_entries"].as_f64(), Some(1.0));
        assert_eq!(v["hit_histogram"][0].as_f64(), Some(1.0));
    }
}
