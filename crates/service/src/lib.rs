//! # lec-service — the cross-query serving layer
//!
//! The paper optimizes one query at a time; its §5 parametric argument
//! (precompute plans for anticipated environments, pick cheaply at
//! start-up) already gestures at the workload-level question: how do you
//! serve a *stream* of optimization requests fast?  This crate is that
//! subsystem, built from two pieces:
//!
//! * **Canonical-shape plan cache** ([`canon`], [`cache`]): every request
//!   is normalized to a canonical table labeling (join-graph topology up
//!   to renaming, per-table statistics, memory-distribution and
//!   mode/config fingerprints — Weisfeiler–Leman refinement plus
//!   minimum-encoding tie-breaking).  Requests that are renamings of an
//!   already-optimized shape skip the whole DP: the cached plan is
//!   relabeled into the caller's numbering and served.  Near-misses (same
//!   bucketed shape, drifted parameters) *revalidate* the cached plan
//!   against one fresh search rather than trusting it, so every response
//!   — served, revalidated, or recomputed — is byte-identical to a fresh
//!   [`lec_core::Optimizer::optimize`] on the same request.  LRU
//!   eviction, per-entry hit counters, and a [`CacheDecision`] in every
//!   response keep the cache observable.
//! * **Persistent worker pool** ([`lec_core::search::PersistentPool`],
//!   injected through [`lec_core::SearchConfig::pool`]): searches borrow
//!   long-lived parked threads instead of spawning a scoped pool per
//!   search (~50µs), so the engine's level fan-out pays off on the
//!   sub-100µs queries a serving layer answers all day — with results
//!   byte-identical to the serial driver, as for every other pool.
//!
//! [`PlanServer`] ties the two together behind one `serve` call:
//!
//! ```
//! use lec_core::{fixtures, Mode};
//! use lec_service::{CacheDecision, PlanServer};
//!
//! let (catalog, query) = fixtures::three_chain();
//! let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
//! let mut server = PlanServer::new(&catalog, memory);
//!
//! let cold = server.serve(&query, &Mode::AlgorithmC).unwrap();
//! assert_eq!(cold.decision, CacheDecision::Recomputed);
//!
//! // A table-renamed copy of the same query: answered from cache, no DP.
//! let renamed = query.relabel_tables(&[2, 0, 1]);
//! let warm = server.serve(&renamed, &Mode::AlgorithmC).unwrap();
//! assert_eq!(warm.decision, CacheDecision::Served);
//! assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
//! ```
//!
//! # Many clients, one server
//!
//! `PlanServer` answers one client at a time; [`ConcurrentPlanServer`]
//! (the engine `PlanServer` itself delegates to) is the multi-client
//! front end — `serve` takes `&self`, the plan cache is lock-striped so
//! hits never serialize behind a global lock, and concurrent misses on
//! the same exact canonical shape *coalesce*: one leader runs the DP,
//! every follower blocks on it and gets the canonical answer relabeled
//! into its own table numbering ([`CacheDecision::Coalesced`]).  Share it
//! with `Arc` (or plain borrows under [`std::thread::scope`]):
//!
//! ```
//! use std::sync::Arc;
//! use lec_core::{fixtures, Mode, Optimizer};
//! use lec_service::ConcurrentPlanServer;
//!
//! let (catalog, query) = fixtures::three_chain();
//! let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
//! let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory.clone()));
//!
//! let fresh = Optimizer::new(&catalog, memory)
//!     .optimize(&query, &Mode::AlgorithmC)
//!     .unwrap();
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let server = Arc::clone(&server);
//!         let (query, fresh) = (&query, &fresh);
//!         scope.spawn(move || {
//!             let resp = server.serve(query, &Mode::AlgorithmC).unwrap();
//!             // Byte-identical under any interleaving.
//!             assert_eq!(resp.plan, fresh.plan);
//!             assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
//!         });
//!     }
//! });
//! // However the clients raced, exactly one DP ran.
//! let stats = server.cache_stats();
//! assert_eq!(stats.recomputed + stats.revalidated, 1);
//! assert_eq!(stats.lookups, 4);
//! ```

pub mod cache;
pub mod concurrent;
pub mod server;

/// Canonicalization now lives in the shared [`lec_canon`] crate (both this
/// crate's whole-request cache keys and `lec-core`'s per-node subplan memo
/// consume it); re-exported here under its historical module path.
pub use lec_canon as canon;

pub use cache::{CacheDecision, CacheStats, ShapeCache, CACHE_SHARDS};
pub use concurrent::{ConcurrentPlanServer, ServeError, ServeHooks};
pub use lec_canon::{
    canonical_form, CanonicalForm, RefusalReason, MAX_CANDIDATE_PERMS, MAX_CANON_TABLES,
};
pub use server::{PlanServer, ServeResponse, DEFAULT_CACHE_CAPACITY};
