//! The concurrent-serving acceptance tests: N client threads sharing one
//! `ConcurrentPlanServer` through `&self`, with every response —
//! served, coalesced, revalidated, recomputed — byte-identical (plan,
//! cost bits, table numbering) to a fresh `Optimizer::optimize` of the
//! same request under randomized interleavings; plus deterministic
//! coalescing tests built on a gate-keeping worker pool that holds a
//! leader's search open until its followers have provably queued.

use lec_core::search::{PersistentPool, SearchConfig, WorkerPool};
use lec_core::{Mode, OptError, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::{CacheDecision, ConcurrentPlanServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const STREAM_LEN: usize = 500;
const CLIENTS: usize = 4;

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// A pool of base queries over one catalog, mixed topologies and sizes
/// (the same construction as `server_parity`).
fn base_pool(catalog: &lec_catalog::Catalog, seed: u64, count: usize) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let mut wg = WorkloadGenerator::new(seed ^ 0xFEED);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    (0..count)
        .map(|i| {
            let n = 3 + (i % 4); // 3..=6 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            let profile = QueryProfile {
                topology,
                sel_buckets: if rng.gen::<bool>() { 1 } else { 3 },
                ..Default::default()
            };
            wg.gen_query(catalog, &ids, &profile)
        })
        .collect()
}

/// The skewed stream: base query `i` drawn with weight `1/(i+1)`, each
/// occurrence randomly table-renamed.
fn skewed_stream(pool: &[Query], seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
                idx = i;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

/// Four clients replay disjoint interleaved slices of the 500-query
/// skewed stream against one shared server; every response must be
/// byte-identical to a fresh optimization of that request, and the
/// decision accounting must close exactly.
#[test]
fn concurrent_clients_stay_byte_identical_to_fresh_optimization() {
    let mut g = lec_catalog::CatalogGenerator::new(11);
    let catalog = g.generate(16);
    let pool = base_pool(&catalog, 11, 24);
    let stream = skewed_stream(&pool, 131);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();

    let fresh_opt = Optimizer::new(&catalog, memory.clone());
    let mode = Mode::AlgorithmC;
    let fresh: Vec<_> = stream
        .iter()
        .map(|q| fresh_opt.optimize(q, &mode).expect("fresh optimize"))
        .collect();

    let server = Arc::new(ConcurrentPlanServer::new(&catalog, memory));
    let coalesced = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = Arc::clone(&server);
            let (stream, fresh, mode, coalesced) = (&stream, &fresh, &mode, &coalesced);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ client as u64);
                for i in (client..STREAM_LEN).step_by(CLIENTS) {
                    // Randomize the interleaving: sometimes yield before
                    // serving so leaders and followers swap roles between
                    // runs.
                    if rng.gen::<bool>() {
                        std::thread::yield_now();
                    }
                    let resp = server.serve(&stream[i], mode).expect("serve succeeds");
                    assert_eq!(
                        resp.plan, fresh[i].plan,
                        "request {i}: served plan differs from fresh optimization \
                         (decision {:?})",
                        resp.decision
                    );
                    assert_eq!(
                        resp.cost.to_bits(),
                        fresh[i].cost.to_bits(),
                        "request {i}: cost bits differ (decision {:?})",
                        resp.decision
                    );
                    if resp.decision == CacheDecision::Coalesced {
                        coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = server.cache_stats();
    assert_eq!(stats.lookups as usize, STREAM_LEN);
    assert_eq!(stats.uncacheable, 0, "this stream is fully cacheable");
    // Every request resolved to exactly one decision.
    assert_eq!(
        stats.served + stats.coalesced_followers + stats.revalidated + stats.recomputed,
        STREAM_LEN as u64,
        "decision accounting must close"
    );
    // The follower counter agrees with the responses the clients saw.
    assert_eq!(
        stats.coalesced_followers as usize,
        coalesced.load(Ordering::Relaxed),
        "follower stat must match Coalesced responses"
    );
    // The skew must still be absorbed: at most one search per distinct
    // shape (coalescing can only reduce searches, never add).
    assert!(
        stats.recomputed + stats.revalidated <= pool.len() as u64,
        "more searches ({} + {}) than distinct shapes ({})",
        stats.recomputed,
        stats.revalidated,
        pool.len()
    );
    assert!(
        stats.hit_rate() > 0.8,
        "hit rate {:.3} too low for a {}-shape pool over {} requests",
        stats.hit_rate(),
        pool.len(),
        STREAM_LEN
    );
    // Per-entry hits add up to the served total.
    assert_eq!(server.hit_histogram().iter().sum::<u64>(), stats.served);
}

/// A worker pool that can hold a search open at its fan-out point (so a
/// test can pile followers onto the in-flight leader deterministically)
/// and, when armed, panic the search instead of running it.
#[derive(Debug)]
struct GatePool {
    inner: PersistentPool,
    gated: AtomicBool,
    entered: AtomicUsize,
    released: AtomicBool,
    poisoned: AtomicBool,
}

impl GatePool {
    fn new(workers: usize) -> Self {
        GatePool {
            inner: PersistentPool::new(workers),
            gated: AtomicBool::new(false),
            entered: AtomicUsize::new(0),
            released: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    fn arm(&self, poison: bool) {
        self.entered.store(0, Ordering::SeqCst);
        self.released.store(false, Ordering::SeqCst);
        self.poisoned.store(poison, Ordering::SeqCst);
        self.gated.store(true, Ordering::SeqCst);
    }

    fn release(&self) {
        self.released.store(true, Ordering::SeqCst);
        self.gated.store(false, Ordering::SeqCst);
    }

    fn await_entered(&self, n: usize) {
        let t0 = Instant::now();
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "timed out waiting for {n} gated searches"
            );
            std::thread::yield_now();
        }
    }
}

impl WorkerPool for GatePool {
    fn scope(&self, workers: usize, worker: &(dyn Fn(usize) + Sync), driver: &mut dyn FnMut()) {
        if self.gated.load(Ordering::SeqCst) {
            self.entered.fetch_add(1, Ordering::SeqCst);
            let t0 = Instant::now();
            while !self.released.load(Ordering::SeqCst) {
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "gate never released"
                );
                std::thread::yield_now();
            }
            if self.poisoned.load(Ordering::SeqCst) {
                panic!("gate pool poisoned this search");
            }
        }
        self.inner.scope(workers, worker, driver)
    }

    fn max_workers(&self) -> usize {
        self.inner.max_workers()
    }
}

/// A 4-table chain whose widest DP level carries 3 connected subsets, so
/// a `fanout_threshold` of 3 forces the search through the pool's
/// `scope` (where the gate sits); plus a 3-table chain that stays under
/// the gate (widest connected level 2) for bystander traffic.
fn gated_fixtures() -> (lec_catalog::Catalog, Query, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(77);
    let catalog = g.generate(12);
    let mut wg = WorkloadGenerator::new(0xBEEF);
    let profile = QueryProfile {
        topology: Topology::Chain,
        ..Default::default()
    };
    let big_ids = g.pick_tables(&catalog, 4);
    let big = wg.gen_query(&catalog, &big_ids, &profile);
    let small_ids = g.pick_tables(&catalog, 3);
    let small = wg.gen_query(&catalog, &small_ids, &profile);
    (catalog, big, small)
}

fn gated_server(catalog: &lec_catalog::Catalog, pool: Arc<GatePool>) -> ConcurrentPlanServer<'_> {
    let memory = lec_prob::presets::spread_family(600.0, 0.6, 4).unwrap();
    let pool: Arc<dyn WorkerPool> = pool;
    let config = SearchConfig {
        threads: 2,
        fanout_threshold: 3,
        pool: Some(pool),
        ..SearchConfig::default()
    };
    ConcurrentPlanServer::with_optimizer(
        Optimizer::new(catalog, memory).with_search_config(config),
        64,
    )
}

/// Concurrent misses on one exact canonical key must run exactly one DP:
/// the gate holds the leader's search open until three followers have
/// provably attached, then every response comes out byte-identical and
/// the metrics show one leader, three followers, one search.
#[test]
fn coalesced_misses_on_one_key_run_exactly_one_dp() {
    let (catalog, big, _) = gated_fixtures();
    let gate = Arc::new(GatePool::new(1));
    let server = gated_server(&catalog, Arc::clone(&gate));
    let mode = Mode::AlgorithmC;

    // Renamed copies of the same shape: one exact canonical key.
    let renamings: [&[usize]; 3] = [&[1, 0, 2, 3], &[3, 2, 1, 0], &[2, 0, 3, 1]];

    gate.arm(false);
    std::thread::scope(|scope| {
        let leader = {
            let (server, big, mode) = (&server, &big, &mode);
            scope.spawn(move || server.serve(big, mode).unwrap())
        };
        // The leader is now provably inside its DP (gated at fan-out).
        gate.await_entered(1);
        let followers: Vec<_> = renamings
            .iter()
            .map(|map| {
                let renamed = big.relabel_tables(map);
                let (server, mode) = (&server, &mode);
                scope.spawn(move || {
                    let fresh = Optimizer::new(
                        server.optimizer().catalog(),
                        server.optimizer().memory().clone(),
                    )
                    .optimize(&renamed, mode)
                    .unwrap();
                    let resp = server.serve(&renamed, mode).unwrap();
                    (resp, fresh)
                })
            })
            .collect();
        // Hold the gate until every follower has attached to the leader's
        // in-flight search — then release and let the single DP answer
        // all four clients.
        let t0 = Instant::now();
        while server.cache_stats().coalesced_followers < renamings.len() as u64 {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "followers never attached"
            );
            std::thread::yield_now();
        }
        gate.release();

        let leader_resp = leader.join().unwrap();
        assert_eq!(leader_resp.decision, CacheDecision::Recomputed);
        for f in followers {
            let (resp, fresh) = f.join().unwrap();
            assert_eq!(resp.decision, CacheDecision::Coalesced);
            assert_eq!(resp.plan, fresh.plan, "coalesced plan differs from fresh");
            assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
        }
    });

    let stats = server.cache_stats();
    assert_eq!(
        stats.recomputed + stats.revalidated,
        1,
        "exactly one DP ran"
    );
    assert_eq!(stats.coalesced_followers, 3);
    assert_eq!(stats.coalesced_leaders, 1);
    assert_eq!(stats.served, 0);
    // The cohort's key is now a plain cache entry.
    let again = server.serve(&big, &mode).unwrap();
    assert_eq!(again.decision, CacheDecision::Served);
}

/// A leader whose search panics mid-flight fails exactly its own
/// followers — each receives `WorkerPanicked` — while a bystander on a
/// different key is untouched, the persistent pool survives, and the
/// poisoned key elects a healthy fresh leader afterwards.
#[test]
fn poisoned_leader_fails_only_its_followers() {
    let (catalog, big, small) = gated_fixtures();
    let gate = Arc::new(GatePool::new(1));
    let server = gated_server(&catalog, Arc::clone(&gate));
    let mode = Mode::AlgorithmC;

    gate.arm(true);
    std::thread::scope(|scope| {
        let leader = {
            let (server, big, mode) = (&server, &big, &mode);
            scope.spawn(move || server.serve(big, mode))
        };
        gate.await_entered(1);
        let followers: Vec<_> = [[1usize, 0, 2, 3], [3, 2, 1, 0]]
            .iter()
            .map(|map| {
                let renamed = big.relabel_tables(map);
                let (server, mode) = (&server, &mode);
                scope.spawn(move || server.serve(&renamed, mode))
            })
            .collect();
        let t0 = Instant::now();
        while server.cache_stats().coalesced_followers < 2 {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "followers never attached"
            );
            std::thread::yield_now();
        }
        // A bystander on a different key stays under the fan-out gate
        // (3-table chain), so it never touches the gated pool and must
        // be answered normally while the leader hangs.
        let bystander = server.serve(&small, &mode).unwrap();
        assert_eq!(bystander.decision, CacheDecision::Recomputed);

        gate.release();
        assert!(
            leader.join().is_err(),
            "the poisoned leader's own thread must observe the panic"
        );
        for f in followers {
            let got = f.join().unwrap();
            assert!(
                matches!(got, Err(OptError::WorkerPanicked)),
                "followers of the failed leader must see WorkerPanicked, got {got:?}"
            );
        }
    });

    // Nothing about the poisoned key was cached, and the pool is healthy:
    // the same key now elects a fresh leader whose (gated-off) search
    // succeeds and is byte-identical to fresh optimization.
    let resp = server.serve(&big, &mode).unwrap();
    assert_eq!(resp.decision, CacheDecision::Recomputed);
    let fresh = Optimizer::new(&catalog, server.optimizer().memory().clone())
        .optimize(&big, &mode)
        .unwrap();
    assert_eq!(resp.plan, fresh.plan);
    assert_eq!(resp.cost.to_bits(), fresh.cost.to_bits());
    assert_eq!(
        server.serve(&big, &mode).unwrap().decision,
        CacheDecision::Served
    );
    // The bystander's entry survived untouched.
    assert_eq!(
        server.serve(&small, &mode).unwrap().decision,
        CacheDecision::Served
    );
}
