//! Canonical-key properties: isomorphic queries under table renaming hash
//! equal (and serve relabel-identical plans); distinct shapes and distinct
//! memory distributions never collide on the 7-table fixtures.

use lec_core::{fixtures, Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::{canonical_form, CacheDecision, PlanServer, RefusalReason};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64, n: usize, topology: Topology) -> (lec_catalog::Catalog, Query) {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xC0FFEE);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology,
            ..Default::default()
        },
    );
    (cat, q)
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Renaming the tables of a chain/star/random query never changes its
    /// canonical keys, and the renamed request is answered from the cache
    /// with exactly the plan a fresh optimization would produce.
    #[test]
    fn renamed_queries_hash_equal_and_serve_identically(
        seed in 0u64..3000,
        n in 3usize..7,
        topo_pick in 0usize..3,
        center in 80.0f64..2000.0,
    ) {
        let topology = [Topology::Chain, Topology::Star, Topology::Random][topo_pick];
        let (cat, q) = workload(seed, n, topology);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let perm = random_perm(&mut rng, n);
        let renamed = q.relabel_tables(&perm);

        let base = canonical_form(&cat, &q).expect("canonicalizable");
        let other = canonical_form(&cat, &renamed).expect("canonicalizable");
        prop_assert_eq!(&base.exact, &other.exact, "exact keys must match");
        prop_assert_eq!(&base.weak, &other.weak, "weak keys must match");

        // Serve the original (recompute), then the renamed copy (served
        // from cache): the served answer must be byte-identical to a
        // fresh optimization of the renamed request.
        let memory = lec_prob::presets::spread_family(center, 0.5, 4).unwrap();
        let mut server = PlanServer::new(&cat, memory.clone());
        let first = server.serve(&q, &Mode::AlgorithmC).unwrap();
        prop_assert_eq!(first.decision, CacheDecision::Recomputed);
        let served = server.serve(&renamed, &Mode::AlgorithmC).unwrap();
        prop_assert_eq!(served.decision, CacheDecision::Served);
        let fresh = Optimizer::new(&cat, memory)
            .optimize(&renamed, &Mode::AlgorithmC)
            .unwrap();
        prop_assert_eq!(&served.plan, &fresh.plan, "served plan must relabel onto the fresh plan");
        prop_assert_eq!(served.cost.to_bits(), fresh.cost.to_bits(), "cost bits must match");
    }

    /// Canonical keys are *discriminating*: materially different queries
    /// (an edge moved, a selectivity changed, an order requirement added)
    /// never share an exact key.
    #[test]
    fn perturbed_queries_never_collide(
        seed in 0u64..3000,
        n in 4usize..7,
    ) {
        let (cat, q) = workload(seed, n, Topology::Chain);
        let base = canonical_form(&cat, &q).expect("canonicalizable");

        // Distinct selectivity on one join.
        let mut sel = q.clone();
        sel.joins[0].selectivity = lec_prob::Distribution::point(
            (sel.joins[0].selectivity.mean() * 3.7).min(1.0),
        );
        let sel_form = canonical_form(&cat, &sel).expect("canonicalizable");
        prop_assert_ne!(&base.exact, &sel_form.exact);

        // Different required order.
        let mut ord = q.clone();
        ord.required_order = match ord.required_order {
            None => Some(ord.joins[0].left),
            Some(_) => None,
        };
        let ord_form = canonical_form(&cat, &ord).expect("canonicalizable");
        prop_assert_ne!(&base.exact, &ord_form.exact);
        prop_assert_ne!(&base.weak, &ord_form.weak);
    }
}

/// A 7-table query over one catalog of strictly distinct table sizes,
/// shaped as a chain or a star (distinct sizes keep every table
/// distinguishable, so both shapes canonicalize).
fn seven_table(topology: Topology) -> (lec_catalog::Catalog, Query) {
    use lec_catalog::{Catalog, ColumnStats, TableStats};
    use lec_plan::{ColumnRef, JoinPredicate, QueryTable};
    let mut cat = Catalog::new();
    let ids: Vec<_> = (0..7)
        .map(|i| {
            cat.add_table(
                format!("T{i}"),
                TableStats::new(
                    10_000 * (i as u64 + 1),
                    500_000 * (i as u64 + 1),
                    vec![ColumnStats::plain("a", 1000), ColumnStats::plain("b", 1000)],
                ),
            )
        })
        .collect();
    let joins = match topology {
        Topology::Chain => (0..6)
            .map(|i| JoinPredicate::exact(ColumnRef::new(i, 1), ColumnRef::new(i + 1, 0), 1e-6))
            .collect(),
        _ => (1..7)
            .map(|i| JoinPredicate::exact(ColumnRef::new(0, 1), ColumnRef::new(i, 0), 1e-6))
            .collect(),
    };
    let q = Query {
        tables: ids.into_iter().map(QueryTable::bare).collect(),
        joins,
        required_order: None,
    };
    (cat, q)
}

#[test]
fn distinct_shapes_never_collide_on_the_seven_table_fixtures() {
    // Chain and star over the *same* seven tables: identical per-table
    // statistics, different topology — no key component may collide.
    let (chain_cat, chain) = seven_table(Topology::Chain);
    let (_, star) = seven_table(Topology::Star);
    let chain_form = canonical_form(&chain_cat, &chain).expect("chain canonicalizes");
    let star_form = canonical_form(&chain_cat, &star).expect("star canonicalizes");
    assert_ne!(chain_form.exact, star_form.exact, "exact keys must differ");
    assert_ne!(chain_form.weak, star_form.weak, "weak keys must differ");

    // The repo's scaling fixtures ride along: the 7-chain canonicalizes
    // (twin-sized tables sit at non-interchangeable chain positions) and
    // differs from the 6-chain; the 7-star has genuinely interchangeable
    // twin spokes and is therefore refused outright.
    let (c7_cat, c7) = fixtures::scaling_chain(7);
    let (c6_cat, c6) = fixtures::scaling_chain(6);
    let c7_form = canonical_form(&c7_cat, &c7).expect("scaling chain canonicalizes");
    let c6_form = canonical_form(&c6_cat, &c6).expect("canonicalizable");
    assert_ne!(c6_form.exact, c7_form.exact);
    assert_ne!(c6_form.weak, c7_form.weak);
    let (s7_cat, s7) = fixtures::scaling_star(7);
    assert_eq!(
        canonical_form(&s7_cat, &s7),
        Err(RefusalReason::TwinTables),
        "twin spokes make the scaling star automorphic, hence uncacheable"
    );
}

#[test]
fn distinct_memory_distributions_never_share_cache_entries() {
    // Memory enters the cache key through its fingerprint: the same
    // 7-table query under two different beliefs must recompute twice.
    let (cat, q) = fixtures::scaling_chain(7);
    let m1 = lec_prob::presets::spread_family(400.0, 0.6, 5).unwrap();
    let m2 = lec_prob::presets::spread_family(400.0, 0.6, 6).unwrap();
    assert_ne!(
        lec_cost::dist_fingerprint(&m1),
        lec_cost::dist_fingerprint(&m2)
    );
    let mut s1 = PlanServer::new(&cat, m1);
    assert_eq!(
        s1.serve(&q, &Mode::AlgorithmC).unwrap().decision,
        CacheDecision::Recomputed
    );
    assert_eq!(
        s1.serve(&q, &Mode::AlgorithmC).unwrap().decision,
        CacheDecision::Served
    );
    let mut s2 = PlanServer::new(
        &cat,
        lec_prob::presets::spread_family(400.0, 0.6, 6).unwrap(),
    );
    assert_eq!(
        s2.serve(&q, &Mode::AlgorithmC).unwrap().decision,
        CacheDecision::Recomputed,
        "a different memory belief must not reuse the other server's shape"
    );
}
