//! The acceptance parity test: over a 500-query skewed workload (repeats
//! and table-renamed copies of a base query pool), every `PlanServer`
//! response — served, revalidated, recomputed, or uncacheable — is
//! byte-identical (plan, cost bits, table numbering) to a fresh
//! `Optimizer::optimize` of the same request, and the cache actually
//! absorbs the skew (non-trivial hit rate, per-entry hit counters).

use lec_core::{Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::{CacheDecision, PlanServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STREAM_LEN: usize = 500;

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// A pool of base queries over one catalog, mixed topologies and sizes.
fn base_pool(catalog: &lec_catalog::Catalog, seed: u64, count: usize) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(seed);
    let mut wg = WorkloadGenerator::new(seed ^ 0xFEED);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    (0..count)
        .map(|i| {
            let n = 3 + (i % 4); // 3..=6 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            let profile = QueryProfile {
                topology,
                sel_buckets: if rng.gen::<bool>() { 1 } else { 3 },
                ..Default::default()
            };
            wg.gen_query(catalog, &ids, &profile)
        })
        .collect()
}

/// The 500-request skewed stream: base query `i` drawn with weight
/// `1/(i+1)` (a zipf-flavoured head), each occurrence randomly
/// table-renamed — the isomorphic-repeat pattern the canonical cache is
/// built for.
fn skewed_stream(pool: &[Query], seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
                idx = i;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

#[test]
fn five_hundred_query_stream_is_byte_identical_to_fresh_optimization() {
    let mut g = lec_catalog::CatalogGenerator::new(11);
    let catalog = g.generate(16);
    let pool = base_pool(&catalog, 11, 24);
    let stream = skewed_stream(&pool, 97);
    assert_eq!(stream.len(), STREAM_LEN);

    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mut server = PlanServer::new(&catalog, memory.clone());
    let fresh_opt = Optimizer::new(&catalog, memory);
    let mode = Mode::AlgorithmC;

    let mut decisions = [0usize; 4];
    for (i, q) in stream.iter().enumerate() {
        let resp = server.serve(q, &mode).expect("serve succeeds");
        let fresh = fresh_opt
            .optimize(q, &mode)
            .expect("fresh optimize succeeds");
        assert_eq!(
            resp.plan, fresh.plan,
            "request {i}: served plan differs from fresh optimization \
             (decision {:?})",
            resp.decision
        );
        assert_eq!(
            resp.cost.to_bits(),
            fresh.cost.to_bits(),
            "request {i}: cost bits differ (decision {:?})",
            resp.decision
        );
        decisions[match resp.decision {
            CacheDecision::Served => 0,
            CacheDecision::Revalidated => 1,
            CacheDecision::Recomputed => 2,
            CacheDecision::Uncacheable => 3,
            // A single-client server can never race itself onto a leader.
            CacheDecision::Coalesced => unreachable!("no concurrent clients here"),
        }] += 1;
    }

    let stats = server.cache_stats();
    assert_eq!(stats.lookups as usize, STREAM_LEN);
    assert_eq!(stats.served as usize, decisions[0]);
    assert_eq!(
        stats.uncacheable, 0,
        "every request in this stream is cacheable"
    );
    // The skewed stream repeats shapes heavily: the cache must be doing
    // real work, and each distinct shape is recomputed exactly once.
    assert!(
        stats.hit_rate() > 0.8,
        "hit rate {:.3} too low for a {}-shape pool over {} requests",
        stats.hit_rate(),
        pool.len(),
        STREAM_LEN
    );
    assert_eq!(
        decisions[2],
        server.cache_len(),
        "one recompute per distinct shape"
    );
    // Hit counters expose the skew: the hottest entry outdraws the sum's
    // tail by construction of the 1/(i+1) weights.
    let histogram = server.hit_histogram();
    assert!(histogram[0] >= histogram[histogram.len() - 1]);
    assert_eq!(
        histogram.iter().sum::<u64>(),
        stats.served,
        "per-entry hits must add up to the served total"
    );
}

#[test]
fn mixed_mode_stream_stays_byte_identical() {
    // The cache key includes the mode fingerprint: interleaving modes over
    // the same queries must neither cross-contaminate nor lose identity.
    let mut g = lec_catalog::CatalogGenerator::new(23);
    let catalog = g.generate(12);
    let pool = base_pool(&catalog, 23, 6);
    let memory = lec_prob::presets::spread_family(700.0, 0.5, 4).unwrap();
    let mut server = PlanServer::new(&catalog, memory.clone());
    let fresh_opt = Optimizer::new(&catalog, memory);
    // AlgorithmB used to be the uncacheable-mode representative; its top-c
    // frontier now truncates under the rename-equivariant (cost, plan
    // shape) order, so the server caches it like the keep-best modes —
    // parity must hold *and* repeats must actually hit.
    let modes = [
        Mode::AlgorithmC,
        Mode::Lsc(lec_core::PointEstimate::Mean),
        Mode::AlgorithmB { c: 2 },
        Mode::Bushy,
        Mode::AlgorithmD {
            config: lec_core::AlgDConfig::default(),
        },
    ];
    let mut rng = StdRng::seed_from_u64(5);
    let mut alg_b_served = 0usize;
    let mut alg_b_uncacheable = 0usize;
    for round in 0..60 {
        let q = &pool[round % pool.len()];
        let renamed = q.relabel_tables(&random_perm(&mut rng, q.n_tables()));
        let mode = &modes[round % modes.len()];
        let resp = server.serve(&renamed, mode).unwrap();
        let fresh = fresh_opt.optimize(&renamed, mode).unwrap();
        assert_eq!(resp.plan, fresh.plan, "round {round} ({})", resp.mode);
        assert_eq!(
            resp.cost.to_bits(),
            fresh.cost.to_bits(),
            "round {round} ({})",
            resp.mode
        );
        if matches!(mode, Mode::AlgorithmB { .. }) {
            match resp.decision {
                CacheDecision::Served => alg_b_served += 1,
                CacheDecision::Uncacheable => alg_b_uncacheable += 1,
                _ => {}
            }
        }
    }
    assert!(server.cache_stats().served > 0, "repeats must hit");
    // Every (query, mode) pair appears twice over 60 rounds: with AlgB now
    // rename-equivariant, its renamed repeats are served from cache (only
    // queries the canonicalizer itself refuses may bypass).
    assert!(
        alg_b_served > 0,
        "Algorithm B renamed repeats must now hit the cache \
         (served {alg_b_served}, uncacheable {alg_b_uncacheable})"
    );
}
