//! `lec-serviced` — a hardened network daemon over the LEC serving layer.
//!
//! The in-process [`ConcurrentPlanServer`](lec_service::ConcurrentPlanServer)
//! answers warm hits in microseconds but assumes callers live in the same
//! address space.  This crate puts it behind a socket without giving up
//! the property the serving stack is built on: **a response that crosses
//! the wire is byte-identical to one served in-process** — same plan
//! shape, same cost bits, same table numbering, same cache decision.
//!
//! # Wire protocol
//!
//! Length-prefixed binary frames, little-endian throughout:
//!
//! ```text
//! +-------------+---------+--------------------+
//! | len: u32 LE | op: u8  | body: len - 1 bytes |
//! +-------------+---------+--------------------+
//! ```
//!
//! `len` counts the opcode plus body (`1 <= len <=`
//! [`MAX_FRAME`](protocol::MAX_FRAME)).  Requests: `OPTIMIZE` (0x01,
//! body = `req_id: u64`, mode, query), `METRICS` (0x02), `PING` (0x03),
//! `DRAIN` (0x04).  Responses: `OPTIMIZE_OK` (0x81, body = `req_id`,
//! response), `ERROR` (0x82, body = `req_id`, `code: u8`, message),
//! `METRICS_OK` (0x83), `PONG` (0x84), `DRAIN_OK` (0x85).  Floats travel
//! as IEEE-754 bit patterns and distributions are reconstructed with
//! [`Distribution::from_parts_exact`](lec_prob::Distribution::from_parts_exact)
//! (validate, never renormalize), which is what carries bit-exactness
//! across the socket.
//!
//! # Error codes
//!
//! | code | name               | transient? | meaning                                    |
//! |-----:|--------------------|------------|--------------------------------------------|
//! | 1    | `Overloaded`       | yes        | admission control shed this cold request   |
//! | 2    | `DeadlineExceeded` | yes        | the request's deadline expired             |
//! | 3    | `WorkerPanicked`   | **no**     | the cohort's search died — surfaced, never retried blindly |
//! | 4    | `Opt`              | no         | deterministic optimizer rejection          |
//! | 5    | `Malformed`        | no         | undecodable frame; the connection is poisoned |
//!
//! Transient codes are the only ones [`Client`] retries, with capped
//! jittered exponential backoff ([`backoff_delay`]).
//!
//! # Robustness posture
//!
//! - **Admission control**: fresh (cold) searches pass a bounded gate;
//!   past `max_cold_backlog` they are shed with `Overloaded` immediately.
//!   Warm hits and coalesced followers bypass the gate entirely, so an
//!   overloaded daemon degrades to a cache, never to a hang.
//! - **Failure discipline**: per-request deadlines, slow-client write
//!   timeouts, and malformed frames that poison exactly one connection.
//! - **Graceful drain**: stop accepting, finish in-flight cohorts, flush,
//!   report.  A watchdog force-closes stragglers at `drain_deadline`.
//! - **Fault injection**: a [`FaultPlan`] deterministically drops,
//!   truncates, garbles, or delays scripted frames and kills scripted
//!   leaders mid-search, so the chaos suite asserts exact blast radii.
//!
//! Transports are pluggable ([`transport::Stream`] /
//! [`transport::Listener`]): TCP, Unix-domain sockets, or the in-process
//! [`duplex`](transport::duplex) pipe the tests run on.

pub mod client;
pub mod daemon;
pub mod faults;
pub mod protocol;
pub mod transport;

pub use client::{backoff_delay, Client, ClientError, RetryPolicy, ServerError};
pub use daemon::{Daemon, DaemonConfig, DaemonMetrics, DrainReport};
pub use faults::{FaultPlan, FrameFault, SearchFault};
pub use protocol::ErrorCode;
pub use transport::{duplex, PipeListener, PipeStream, TcpAcceptor, UnixAcceptor};
