//! `lec-serviced` — a hardened network daemon over the LEC serving layer.
//!
//! The in-process [`ConcurrentPlanServer`](lec_service::ConcurrentPlanServer)
//! answers warm hits in microseconds but assumes callers live in the same
//! address space.  This crate puts it behind a socket without giving up
//! the property the serving stack is built on: **a response that crosses
//! the wire is byte-identical to one served in-process** — same plan
//! shape, same cost bits, same table numbering, same cache decision.
//!
//! # Wire protocol
//!
//! Length-prefixed binary frames, little-endian throughout:
//!
//! ```text
//! +-------------+---------+--------------------+
//! | len: u32 LE | op: u8  | body: len - 1 bytes |
//! +-------------+---------+--------------------+
//! ```
//!
//! `len` counts the opcode plus body (`1 <= len <=`
//! [`MAX_FRAME`](protocol::MAX_FRAME)).
//!
//! | op   | name         | direction | body                                        |
//! |-----:|--------------|-----------|---------------------------------------------|
//! | 0x01 | `OPTIMIZE`   | request   | `req_id: u64`, mode, query                  |
//! | 0x02 | `METRICS`    | request   | empty                                       |
//! | 0x03 | `PING`       | request   | empty                                       |
//! | 0x04 | `DRAIN`      | request   | empty                                       |
//! | 0x05 | `STATS`      | request   | `format: u8` (0 = JSON, 1 = Prometheus)     |
//! | 0x81 | `OPTIMIZE_OK`| response  | `req_id: u64`, response                     |
//! | 0x82 | `ERROR`      | response  | `req_id: u64`, `code: u8`, message          |
//! | 0x83 | `METRICS_OK` | response  | one JSON string                             |
//! | 0x84 | `PONG`       | response  | empty                                       |
//! | 0x85 | `DRAIN_OK`   | response  | empty                                       |
//! | 0x86 | `STATS_OK`   | response  | one string in the requested format          |
//!
//! `STATS` with the JSON format byte returns the daemon's full
//! observability snapshot — latency histograms (p50/p90/p99/p999 per
//! outcome), engine timing, trace-ring occupancy, and the slow-query log
//! when telemetry is installed — byte-identical to the in-process
//! `Daemon::metrics_json` document at snapshot time; the Prometheus
//! format returns a text exposition whose every line parses with
//! [`lec_telemetry::parse_prometheus`].  Floats travel
//! as IEEE-754 bit patterns and distributions are reconstructed with
//! [`Distribution::from_parts_exact`](lec_prob::Distribution::from_parts_exact)
//! (validate, never renormalize), which is what carries bit-exactness
//! across the socket.
//!
//! # Error codes
//!
//! | code | name               | transient? | meaning                                    |
//! |-----:|--------------------|------------|--------------------------------------------|
//! | 1    | `Overloaded`       | yes        | admission control shed this cold request   |
//! | 2    | `DeadlineExceeded` | yes        | the request's deadline expired             |
//! | 3    | `WorkerPanicked`   | **no**     | the cohort's search died — surfaced, never retried blindly |
//! | 4    | `Opt`              | no         | deterministic optimizer rejection          |
//! | 5    | `Malformed`        | no         | undecodable frame; the connection is poisoned |
//!
//! Transient codes are the only ones [`Client`] retries, with capped
//! jittered exponential backoff ([`backoff_delay`]).
//!
//! # Robustness posture
//!
//! - **Admission control**: fresh (cold) searches pass a bounded gate;
//!   past `max_cold_backlog` they are shed with `Overloaded` immediately.
//!   Warm hits and coalesced followers bypass the gate entirely, so an
//!   overloaded daemon degrades to a cache, never to a hang.
//! - **Failure discipline**: per-request deadlines, slow-client write
//!   timeouts, and malformed frames that poison exactly one connection.
//! - **Graceful drain**: stop accepting, finish in-flight cohorts, flush,
//!   report.  A watchdog force-closes stragglers at `drain_deadline`.
//! - **Fault injection**: a [`FaultPlan`] deterministically drops,
//!   truncates, garbles, or delays scripted frames and kills scripted
//!   leaders mid-search, so the chaos suite asserts exact blast radii.
//!
//! Transports are pluggable ([`transport::Stream`] /
//! [`transport::Listener`]): TCP, Unix-domain sockets, or the in-process
//! [`duplex`](transport::duplex) pipe the tests run on.

pub mod client;
pub mod daemon;
pub mod faults;
pub mod protocol;
pub mod transport;

pub use client::{backoff_delay, Client, ClientError, RetryPolicy, ServerError};
pub use daemon::{flatten_counters, Daemon, DaemonConfig, DaemonMetrics, DrainReport};
pub use faults::{FaultPlan, FrameFault, SearchFault};
pub use protocol::{ErrorCode, StatsFormat};
pub use transport::{duplex, PipeListener, PipeStream, TcpAcceptor, UnixAcceptor};
