//! Pluggable byte transports: TCP, Unix-domain sockets, and an in-process
//! duplex pipe.
//!
//! The daemon and client are written against the [`Stream`] / [`Listener`]
//! traits so every robustness test can run hermetically over [`duplex`]
//! pipes — deterministic, no ports, no filesystem — while production
//! deployments listen on TCP or a Unix socket with identical semantics.
//! The pipe implements *bounded* buffers with real read/write timeouts, so
//! slow-client backpressure and write-timeout tests behave exactly like a
//! kernel socket buffer filling up.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A closure that force-closes a connection from another thread (the
/// drain watchdog's hammer for connections that outlive the deadline).
pub type AbortHandle = Box<dyn Fn() + Send + Sync>;

/// One bidirectional byte stream with timeout support.
pub trait Stream: Send {
    /// Read up to `buf.len()` bytes; `Ok(0)` means the peer closed.
    /// Honors the read timeout with `ErrorKind::WouldBlock`/`TimedOut`.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Write the whole buffer, honoring the write timeout.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Set the read timeout (`None` blocks forever).
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// Set the write timeout (`None` blocks forever).
    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()>;

    /// A handle that closes this stream from any thread.
    fn abort_handle(&self) -> AbortHandle;
}

/// An accept source the daemon can poll.
pub trait Listener: Send {
    /// Accept one connection, waiting at most `timeout`.  `Ok(None)`
    /// means the timeout elapsed with nothing to accept (the daemon uses
    /// this to poll its drain flag).
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Box<dyn Stream>>>;
}

/// True when an I/O error is one of the two "nothing yet" timeout kinds.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

impl Stream for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, d)
    }

    fn abort_handle(&self) -> AbortHandle {
        match self.try_clone() {
            Ok(clone) => Box::new(move || {
                let _ = clone.shutdown(std::net::Shutdown::Both);
            }),
            Err(_) => Box::new(|| {}),
        }
    }
}

/// [`Listener`] over a non-blocking [`TcpListener`].
pub struct TcpAcceptor {
    inner: TcpListener,
}

impl TcpAcceptor {
    /// Wrap a bound listener (switched to non-blocking accepts).
    pub fn new(inner: TcpListener) -> io::Result<Self> {
        inner.set_nonblocking(true)?;
        Ok(TcpAcceptor { inner })
    }
}

impl Listener for TcpAcceptor {
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Box<dyn Stream>>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Unix-domain sockets
// ---------------------------------------------------------------------

impl Stream for UnixStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        UnixStream::set_write_timeout(self, d)
    }

    fn abort_handle(&self) -> AbortHandle {
        match self.try_clone() {
            Ok(clone) => Box::new(move || {
                let _ = clone.shutdown(std::net::Shutdown::Both);
            }),
            Err(_) => Box::new(|| {}),
        }
    }
}

/// [`Listener`] over a non-blocking [`UnixListener`].
pub struct UnixAcceptor {
    inner: UnixListener,
}

impl UnixAcceptor {
    /// Wrap a bound listener (switched to non-blocking accepts).
    pub fn new(inner: UnixListener) -> io::Result<Self> {
        inner.set_nonblocking(true)?;
        Ok(UnixAcceptor { inner })
    }
}

impl Listener for UnixAcceptor {
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Box<dyn Stream>>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// In-process duplex pipe
// ---------------------------------------------------------------------

/// Capacity of one pipe direction — small enough that a reader who stops
/// draining makes the writer block (and hit its write timeout), exactly
/// like a kernel socket buffer.
pub const PIPE_CAPACITY: usize = 64 * 1024;

#[derive(Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

struct PipeDirection {
    buf: Mutex<PipeBuf>,
    /// Wakes readers when data arrives or the direction closes.
    readable: Condvar,
    /// Wakes writers when space frees up or the direction closes.
    writable: Condvar,
    capacity: usize,
}

impl PipeDirection {
    fn new(capacity: usize) -> Self {
        PipeDirection {
            buf: Mutex::new(PipeBuf::default()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    fn close(&self) {
        self.buf.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !buf.data.is_empty() {
                let n = out.len().min(buf.data.len());
                for b in out.iter_mut().take(n) {
                    *b = buf.data.pop_front().expect("len checked");
                }
                drop(buf);
                self.writable.notify_all();
                return Ok(n);
            }
            if buf.closed {
                return Ok(0);
            }
            match deadline {
                None => {
                    buf = self.readable.wait(buf).unwrap_or_else(|p| p.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "pipe read timeout"));
                    }
                    let (guard, _to) = self
                        .readable
                        .wait_timeout(buf, d - now)
                        .unwrap_or_else(|p| p.into_inner());
                    buf = guard;
                }
            }
        }
    }

    fn write_all(&self, mut data: &[u8], timeout: Option<Duration>) -> io::Result<()> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
        while !data.is_empty() {
            if buf.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe peer closed",
                ));
            }
            let space = self.capacity - buf.data.len();
            if space > 0 {
                let n = space.min(data.len());
                buf.data.extend(&data[..n]);
                data = &data[n..];
                self.readable.notify_all();
                continue;
            }
            match deadline {
                None => {
                    buf = self.writable.wait(buf).unwrap_or_else(|p| p.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe write timeout",
                        ));
                    }
                    let (guard, _to) = self
                        .writable
                        .wait_timeout(buf, d - now)
                        .unwrap_or_else(|p| p.into_inner());
                    buf = guard;
                }
            }
        }
        Ok(())
    }
}

/// One end of an in-process duplex pipe.  Cheap to create, deterministic
/// under test, and faithful to socket semantics: bounded buffers, real
/// timeouts, `Ok(0)` on peer close.
pub struct PipeStream {
    /// The direction this end reads from.
    rx: Arc<PipeDirection>,
    /// The direction this end writes to.
    tx: Arc<PipeDirection>,
    timeouts: Arc<Mutex<(Option<Duration>, Option<Duration>)>>,
}

/// Both pipe ends, fully connected.
pub fn duplex() -> (PipeStream, PipeStream) {
    duplex_with_capacity(PIPE_CAPACITY)
}

/// [`duplex`] with an explicit per-direction capacity (tests shrink it to
/// trip write timeouts quickly).
pub fn duplex_with_capacity(capacity: usize) -> (PipeStream, PipeStream) {
    let a_to_b = Arc::new(PipeDirection::new(capacity));
    let b_to_a = Arc::new(PipeDirection::new(capacity));
    let a = PipeStream {
        rx: Arc::clone(&b_to_a),
        tx: Arc::clone(&a_to_b),
        timeouts: Arc::new(Mutex::new((None, None))),
    };
    let b = PipeStream {
        rx: a_to_b,
        tx: b_to_a,
        timeouts: Arc::new(Mutex::new((None, None))),
    };
    (a, b)
}

impl Drop for PipeStream {
    fn drop(&mut self) {
        // Dropping one end closes both directions, like a socket close.
        self.rx.close();
        self.tx.close();
    }
}

impl Stream for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = self.timeouts.lock().unwrap_or_else(|p| p.into_inner()).0;
        self.rx.read(buf, timeout)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let timeout = self.timeouts.lock().unwrap_or_else(|p| p.into_inner()).1;
        self.tx.write_all(buf, timeout)
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.timeouts.lock().unwrap_or_else(|p| p.into_inner()).0 = d;
        Ok(())
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.timeouts.lock().unwrap_or_else(|p| p.into_inner()).1 = d;
        Ok(())
    }

    fn abort_handle(&self) -> AbortHandle {
        let rx = Arc::clone(&self.rx);
        let tx = Arc::clone(&self.tx);
        Box::new(move || {
            rx.close();
            tx.close();
        })
    }
}

/// An in-process [`Listener`]: tests hand the daemon one of these and
/// call [`PipeListener::connect`] to dial it.
#[derive(Clone)]
pub struct PipeListener {
    pending: Arc<(Mutex<VecDeque<PipeStream>>, Condvar)>,
    capacity: usize,
}

impl Default for PipeListener {
    fn default() -> Self {
        Self::new()
    }
}

impl PipeListener {
    pub fn new() -> Self {
        Self::with_capacity(PIPE_CAPACITY)
    }

    /// A listener whose pipes have the given per-direction capacity
    /// (slow-client tests shrink it so one unread response fills the
    /// buffer and trips the daemon's write timeout).
    pub fn with_capacity(capacity: usize) -> Self {
        PipeListener {
            pending: Arc::new((Mutex::new(VecDeque::new()), Condvar::new())),
            capacity,
        }
    }

    /// Dial the listener: returns the client end; the server end is
    /// queued for the daemon's next accept.
    pub fn connect(&self) -> PipeStream {
        let (client, server) = duplex_with_capacity(self.capacity);
        let (lock, cv) = &*self.pending;
        lock.lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(server);
        cv.notify_all();
        client
    }
}

impl Listener for PipeListener {
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Box<dyn Stream>>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.pending;
        let mut pending = lock.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(stream) = pending.pop_front() {
                return Ok(Some(Box::new(stream)));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _to) = cv
                .wait_timeout(pending, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            pending = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrips_bytes() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn pipe_read_times_out_then_recovers() {
        let (mut a, mut b) = duplex();
        b.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let err = b.read(&mut [0u8; 4]).unwrap_err();
        assert!(is_timeout(&err));
        a.write_all(b"x").unwrap();
        assert_eq!(b.read(&mut [0u8; 4]).unwrap(), 1);
    }

    #[test]
    fn pipe_write_times_out_when_reader_stalls() {
        let (mut a, _b) = duplex_with_capacity(8);
        a.set_write_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        // Fills the 8-byte buffer, then must time out (nobody reads).
        let err = a.write_all(&[0u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn pipe_close_is_visible_to_the_peer() {
        let (a, mut b) = duplex();
        drop(a);
        assert_eq!(b.read(&mut [0u8; 4]).unwrap(), 0, "EOF after close");
        assert!(b.write_all(b"x").is_err(), "write into closed pipe fails");
    }

    #[test]
    fn pipe_listener_accepts_in_connect_order() {
        let listener = PipeListener::new();
        assert!(listener
            .accept_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
        let mut c1 = listener.connect();
        let _c2 = listener.connect();
        let mut s1 = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("first accept");
        c1.write_all(b"one").unwrap();
        let mut buf = [0u8; 8];
        let n = s1.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"one");
    }

    #[test]
    fn abort_handle_force_closes_a_blocked_read() {
        let (a, mut b) = duplex();
        let abort = b.abort_handle();
        let reader = std::thread::spawn(move || b.read(&mut [0u8; 4]));
        std::thread::sleep(Duration::from_millis(10));
        abort();
        assert_eq!(reader.join().unwrap().unwrap(), 0, "aborted read sees EOF");
        drop(a);
    }
}
