//! The daemon: accept loop, per-connection frame pump, admission control,
//! graceful drain, and deterministic fault injection.
//!
//! # Threading model
//!
//! [`Daemon::run`] owns a `std::thread::scope`: one accept loop (the
//! calling thread) plus one handler thread per connection.  Handlers never
//! block indefinitely — reads use the configured poll interval as a
//! timeout so the drain flag is observed within one interval, and writes
//! carry the slow-client write timeout.  `run` returns only after every
//! handler has exited, so the returned [`DrainReport`] is a complete
//! account of the daemon's lifetime.
//!
//! # Admission control
//!
//! Warm cache hits and coalesced followers are practically free, so they
//! are never gated.  Fresh (cold) searches are the expensive resource: a
//! bounded [`Gate`] of `max_cold_backlog` slots fronts them, and a cold
//! request that cannot take a slot is shed with
//! [`ErrorCode::Overloaded`](crate::protocol::ErrorCode::Overloaded)
//! *immediately* — under overload the daemon degrades to serving only
//! what it already knows, it never hangs.  A shed leader publishes the
//! refusal to its whole coalesced cohort (see
//! [`lec_service::ConcurrentPlanServer::serve_gated`]).
//!
//! # Drain semantics
//!
//! [`Daemon::initiate_drain`] (or a wire `DRAIN` frame) flips one flag:
//! the accept loop stops accepting (late connections are closed and
//! counted rejected), handlers finish the batch in hand, flush, and close.
//! A watchdog force-closes any connection still open at
//! `drain_deadline` via its [`AbortHandle`].  The drain duration is
//! recorded in the metrics and the final metrics snapshot is returned in
//! the [`DrainReport`].

use crate::faults::{FaultPlan, FrameFault, SearchFault};
use crate::protocol::{self, op, DecodeError, ErrorCode, Reader, StatsFormat, Writer, MAX_FRAME};
use crate::transport::{is_timeout, AbortHandle, Listener, Stream};
use lec_core::OptError;
use lec_service::{CacheDecision, ConcurrentPlanServer, ServeError, ServeHooks};
use lec_telemetry::{Outcome, Stage, TraceCtx};
use serde_json::json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything tunable about one daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Cold-search slots: fresh searches admitted concurrently before
    /// further cold requests are shed with `Overloaded`.
    pub max_cold_backlog: usize,
    /// Per-request deadline.  Bounds a follower's coalesced wait inside
    /// the serving layer and converts an over-deadline completion into
    /// `DeadlineExceeded` at the response site.  `None` disables it.
    pub request_deadline: Option<Duration>,
    /// Slow-client write timeout; a connection whose peer stops draining
    /// its socket is closed rather than allowed to wedge a handler.
    pub write_timeout: Option<Duration>,
    /// How often blocked reads/accepts wake up to poll the drain flag.
    pub poll_interval: Duration,
    /// How long a drain waits for in-flight connections before the
    /// watchdog force-closes the stragglers.
    pub drain_deadline: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            max_cold_backlog: 4,
            request_deadline: None,
            write_timeout: Some(Duration::from_secs(2)),
            poll_interval: Duration::from_millis(10),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Monotonic counters, cheap to bump from any handler thread.  The
/// closure invariants tests assert: `connections_accepted ==
/// connections_active + closed`, `requests == requests_ok +
/// requests_err`, and the gate's depth returns to zero at drain.
#[derive(Debug, Default)]
pub struct DaemonMetrics {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected: AtomicU64,
    requests_ok: AtomicU64,
    requests_err: AtomicU64,
    shed_requests: AtomicU64,
    deadline_expirations: AtomicU64,
    malformed_frames: AtomicU64,
    forced_aborts: AtomicU64,
    drain_duration_ms: AtomicU64,
}

macro_rules! metric_getters {
    ($($name:ident),* $(,)?) => {$(
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Acquire)
        }
    )*};
}

impl DaemonMetrics {
    metric_getters!(
        connections_accepted,
        connections_active,
        connections_rejected,
        requests_ok,
        requests_err,
        shed_requests,
        deadline_expirations,
        malformed_frames,
        forced_aborts,
        drain_duration_ms,
    );
}

/// The bounded cold-search backlog.  `try_acquire` is the only admission
/// path; the high-water mark records the deepest the queue ever got.
#[derive(Debug)]
pub struct Gate {
    depth: AtomicUsize,
    max: usize,
    high_water: AtomicUsize,
}

impl Gate {
    fn new(max: usize) -> Self {
        Gate {
            depth: AtomicUsize::new(0),
            max,
            high_water: AtomicUsize::new(0),
        }
    }

    fn try_acquire(&self) -> bool {
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return false;
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let new = cur + 1;
                    let mut hw = self.high_water.load(Ordering::Relaxed);
                    while new > hw {
                        match self.high_water.compare_exchange_weak(
                            hw,
                            new,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(seen) => hw = seen,
                        }
                    }
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn release(&self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Current cold-search queue depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Deepest the cold-search queue ever got.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }
}

/// Per-request [`ServeHooks`]: wires the daemon's gate into the serving
/// layer's admission points and injects the scripted search fault.
struct RequestHooks<'d> {
    gate: &'d Gate,
    fault: Option<SearchFault>,
}

impl ServeHooks for RequestHooks<'_> {
    fn admit_cold(&self) -> bool {
        self.gate.try_acquire()
    }

    fn release_cold(&self) {
        self.gate.release()
    }

    fn before_search(&self) {
        match self.fault {
            // A genuine mid-cohort death: this panic unwinds through the
            // serving layer's LeaderGuard (publishing `WorkerPanicked` to
            // the whole cohort) before the daemon's catch_unwind stops it.
            Some(SearchFault::KillLeader) => panic!("fault injection: leader killed mid-search"),
            // Holding the admission slot while sleeping is the lever
            // overload tests use to saturate the backlog deterministically.
            Some(SearchFault::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
    }
}

/// What [`Daemon::run`] hands back once the last connection closes.
#[derive(Debug)]
pub struct DrainReport {
    /// Wall time from drain initiation to the last handler exiting.
    pub drain_duration: Duration,
    /// Connections the watchdog had to force-close at the deadline.
    pub forced_aborts: u64,
    /// Final metrics snapshot (same shape as a wire `METRICS` response).
    pub metrics: serde_json::Value,
    /// The same snapshot flattened into dotted counter keys, every one
    /// prefixed with its layer's namespace (`daemon.requests_ok`,
    /// `service.cache.served`, ...).  The prefixes keep the two layers'
    /// counter names from colliding however either document evolves —
    /// pinned by `drain_report_counters_are_namespaced_and_collision_free`.
    pub counters: Vec<(String, f64)>,
}

/// Flatten a nested metrics document into dotted counter keys.  Only
/// numeric leaves are taken (booleans, strings, and arrays — e.g. the
/// slow-query log — are presentation, not counters), so the result is a
/// flat, collision-free `(name, value)` list suitable for diffing,
/// assertions, and Prometheus exposition.
pub fn flatten_counters(doc: &serde_json::Value) -> Vec<(String, f64)> {
    fn walk(prefix: &str, v: &serde_json::Value, out: &mut Vec<(String, f64)>) {
        match v {
            serde_json::Value::Object(pairs) => {
                for (k, v) in pairs {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, v, out);
                }
            }
            serde_json::Value::Number(n) => out.push((prefix.to_string(), *n)),
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk("", doc, &mut out);
    out
}

/// What to do with the connection after processing one frame.
enum Disposition {
    /// Keep pumping frames.
    Continue,
    /// Flush pending responses (the error frame is among them), then
    /// close — the malformed-frame path.
    Poison,
    /// Close immediately without flushing (inbound `Drop` fault).
    Hangup,
}

/// A hardened front end over one [`ConcurrentPlanServer`].
pub struct Daemon<'s, 'c> {
    server: &'s ConcurrentPlanServer<'c>,
    config: DaemonConfig,
    faults: FaultPlan,
    metrics: DaemonMetrics,
    gate: Gate,
    drain: AtomicBool,
    drain_started: Mutex<Option<Instant>>,
}

impl<'s, 'c> Daemon<'s, 'c> {
    pub fn new(server: &'s ConcurrentPlanServer<'c>, config: DaemonConfig) -> Self {
        let gate = Gate::new(config.max_cold_backlog);
        Daemon {
            server,
            config,
            faults: FaultPlan::new(),
            metrics: DaemonMetrics::default(),
            gate,
            drain: AtomicBool::new(false),
            drain_started: Mutex::new(None),
        }
    }

    /// Install a deterministic fault schedule (chaos tests only; the
    /// empty default keeps the batched fast path).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    pub fn metrics(&self) -> &DaemonMetrics {
        &self.metrics
    }

    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// Begin a graceful drain: stop accepting, finish in-flight work,
    /// flush, exit.  Idempotent; the first call stamps the drain clock.
    pub fn initiate_drain(&self) {
        let mut started = self.drain_started.lock().unwrap_or_else(|p| p.into_inner());
        if started.is_none() {
            *started = Some(Instant::now());
        }
        self.drain.store(true, Ordering::Release);
    }

    pub fn is_draining(&self) -> bool {
        self.drain.load(Ordering::Acquire)
    }

    /// The daemon's metrics document: the serving layer's own snapshot
    /// under `"service"`, the daemon counters under `"daemon"`, keys
    /// recursively sorted.  When telemetry is installed on the server,
    /// its full snapshot (latency quantiles, engine histograms, trace
    /// ring, slow log) rides along under `service.telemetry` — this is
    /// also the exact document a wire `STATS` request with the JSON
    /// format byte returns.
    pub fn metrics_json(&self) -> serde_json::Value {
        let m = &self.metrics;
        json!({
            "service": self.server.metrics_json(),
            "daemon": {
                "connections_accepted": m.connections_accepted() as f64,
                "connections_active": m.connections_active() as f64,
                "connections_rejected": m.connections_rejected() as f64,
                "requests_ok": m.requests_ok() as f64,
                "requests_err": m.requests_err() as f64,
                "shed_requests": m.shed_requests() as f64,
                "deadline_expirations": m.deadline_expirations() as f64,
                "malformed_frames": m.malformed_frames() as f64,
                "forced_aborts": m.forced_aborts() as f64,
                "cold_queue_depth": self.gate.depth() as f64,
                "cold_queue_high_water": self.gate.high_water() as f64,
                "drain_duration_ms": m.drain_duration_ms() as f64,
            }
        })
        .sorted()
    }

    /// Prometheus text exposition: every flattened counter as an
    /// unlabeled gauge (`lec_daemon_requests_ok`,
    /// `lec_service_cache_served`, ...), plus — when telemetry is
    /// installed — the labeled histogram series from
    /// [`lec_telemetry::Telemetry::prometheus`].  Every line parses with
    /// [`lec_telemetry::parse_prometheus`]; tests and the CI smoke step
    /// pin that.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (key, value) in flatten_counters(&self.metrics_json()) {
            let name = format!("lec_{}", key.replace('.', "_"));
            lec_telemetry::write_sample(&mut out, &name, &[], value);
        }
        if let Some(tel) = self.server.telemetry() {
            out.push_str(&tel.prometheus());
        }
        out
    }

    /// Serve the listener until drained.  Blocks the calling thread; one
    /// handler thread per connection.  Returns after the last handler
    /// exits, with the final metrics inside the [`DrainReport`].
    pub fn run(&self, listener: &dyn Listener) -> DrainReport {
        // Abort handles for every connection ever accepted; firing one
        // for an already-closed connection is a harmless no-op, so the
        // watchdog just fires them all at the deadline.
        let abort_handles: Mutex<Vec<AbortHandle>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let mut next_conn_id: u64 = 0;
            while !self.is_draining() {
                match listener.accept_timeout(self.config.poll_interval) {
                    Ok(Some(stream)) => {
                        if self.is_draining() {
                            self.metrics
                                .connections_rejected
                                .fetch_add(1, Ordering::AcqRel);
                            drop(stream);
                            break;
                        }
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        self.metrics
                            .connections_accepted
                            .fetch_add(1, Ordering::AcqRel);
                        self.metrics
                            .connections_active
                            .fetch_add(1, Ordering::AcqRel);
                        abort_handles
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(stream.abort_handle());
                        scope.spawn(move || self.handle_conn(conn_id, stream));
                    }
                    Ok(None) => {}
                    // A dead listener cannot accept; treat as drain.
                    Err(_) => self.initiate_drain(),
                }
            }

            // Watchdog: give in-flight connections until the drain
            // deadline, then force-close the stragglers.  Late arrivals
            // are rejected (accept-and-close) throughout the drain so a
            // dialing client sees an immediate close, never a hang.
            let started = self
                .drain_started
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(Instant::now);
            loop {
                while let Ok(Some(stream)) = listener.accept_timeout(Duration::ZERO) {
                    self.metrics
                        .connections_rejected
                        .fetch_add(1, Ordering::AcqRel);
                    drop(stream);
                }
                let active = self.metrics.connections_active();
                if active == 0 {
                    break;
                }
                if started.elapsed() >= self.config.drain_deadline {
                    self.metrics
                        .forced_aborts
                        .fetch_add(active, Ordering::AcqRel);
                    for handle in abort_handles
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .iter()
                    {
                        handle();
                    }
                    break;
                }
                std::thread::sleep(self.config.poll_interval);
            }
            // Scope exit joins every handler (aborted connections unblock
            // promptly: their reads see EOF/errors).
        });

        let started = self
            .drain_started
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .unwrap_or_else(Instant::now);
        let drain_duration = started.elapsed();
        self.metrics
            .drain_duration_ms
            .store(drain_duration.as_millis() as u64, Ordering::Release);
        let metrics = self.metrics_json();
        DrainReport {
            drain_duration,
            forced_aborts: self.metrics.forced_aborts(),
            counters: flatten_counters(&metrics),
            metrics,
        }
    }

    fn handle_conn(&self, conn_id: u64, mut stream: Box<dyn Stream>) {
        struct ActiveGuard<'a>(&'a AtomicU64);
        impl Drop for ActiveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _active = ActiveGuard(&self.metrics.connections_active);

        let _ = stream.set_read_timeout(Some(self.config.poll_interval));
        let _ = stream.set_write_timeout(self.config.write_timeout);

        let mut inbuf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        let mut in_frame_idx: u64 = 0;
        let mut out_frame_idx: u64 = 0;
        let mut req_idx: u64 = 0;

        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    if self.is_draining() {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            }

            // Peel every complete frame the read delivered and answer the
            // whole batch with one write — this is the syscall
            // amortization that lets one connection pump thousands of
            // ~microsecond warm hits per second.
            let mut out_frames: Vec<Vec<u8>> = Vec::new();
            let mut disposition = Disposition::Continue;
            loop {
                let mut frame = match peel_frame(&mut inbuf) {
                    Ok(Some(frame)) => frame,
                    Ok(None) => break,
                    Err(what) => {
                        self.metrics.malformed_frames.fetch_add(1, Ordering::AcqRel);
                        out_frames.push(error_frame(0, ErrorCode::Malformed, what));
                        disposition = Disposition::Poison;
                        break;
                    }
                };

                let idx = in_frame_idx;
                in_frame_idx += 1;
                match self.faults.inbound_fault(conn_id, idx) {
                    None => {}
                    Some(FrameFault::Drop) => {
                        disposition = Disposition::Hangup;
                        break;
                    }
                    Some(FrameFault::Truncate(n)) => frame.truncate(n),
                    Some(FrameFault::Garble { offset, mask }) if !frame.is_empty() => {
                        let i = offset % frame.len();
                        frame[i] ^= mask;
                    }
                    Some(FrameFault::Garble { .. }) => {}
                    Some(FrameFault::Delay(d)) => std::thread::sleep(d),
                }

                if self.dispatch(conn_id, &mut req_idx, &frame, &mut out_frames) {
                    disposition = Disposition::Poison;
                    break;
                }
            }

            if matches!(disposition, Disposition::Hangup) {
                return;
            }
            if !self.flush(conn_id, stream.as_mut(), out_frames, &mut out_frame_idx) {
                return;
            }
            if matches!(disposition, Disposition::Poison) || self.is_draining() {
                return;
            }
        }
    }

    /// Process one frame (opcode + body).  Pushes any response frames;
    /// returns `true` when the connection must be poisoned (the error
    /// frame is already queued).
    fn dispatch(
        &self,
        conn_id: u64,
        req_idx: &mut u64,
        frame: &[u8],
        out: &mut Vec<Vec<u8>>,
    ) -> bool {
        let Some((&opcode, body)) = frame.split_first() else {
            self.metrics.malformed_frames.fetch_add(1, Ordering::AcqRel);
            out.push(error_frame(0, ErrorCode::Malformed, "empty frame"));
            return true;
        };
        match opcode {
            op::OPTIMIZE => {
                // With telemetry installed the trace clock starts before
                // the frame is decoded; the request id arrives mid-decode,
                // so the context is built retroactively on that epoch
                // (`trace_ctx_at`).  Without telemetry no clock is read.
                let tel = self.server.telemetry().filter(|t| t.enabled());
                let decode_start = tel.map(|_| Instant::now());
                let mut r = Reader::new(body);
                let parsed = (|| {
                    let req_id = r.u64()?;
                    let mode = protocol::decode_mode(&mut r)?;
                    let query = protocol::decode_query(&mut r)?;
                    r.finish()?;
                    Ok::<_, DecodeError>((req_id, mode, query))
                })();
                let (req_id, mode, query) = match parsed {
                    Ok(parts) => parts,
                    Err(e) => {
                        self.metrics.malformed_frames.fetch_add(1, Ordering::AcqRel);
                        out.push(error_frame(0, ErrorCode::Malformed, &e.to_string()));
                        return true;
                    }
                };
                let mut trace = match (tel, decode_start) {
                    (Some(t), Some(epoch)) => t.trace_ctx_at(req_id, epoch),
                    _ => TraceCtx::disabled(),
                };
                // Decode span: epoch to now, detail = frame body bytes.
                trace.span(Stage::Decode, 0, body.len() as u64);

                let fault = self.faults.search_fault(conn_id, *req_idx);
                *req_idx += 1;
                let deadline = self.config.request_deadline.map(|d| Instant::now() + d);
                let hooks = RequestHooks {
                    gate: &self.gate,
                    fault,
                };
                // The serving layer's LeaderGuard publishes the cohort
                // error before a panic reaches this catch; mapping the
                // escaped panic to WorkerPanicked keeps the leader's own
                // response consistent with what its followers saw.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    self.server
                        .serve_traced(&query, &mode, &hooks, deadline, &mut trace)
                }))
                .unwrap_or(Err(ServeError::Opt(OptError::WorkerPanicked)));
                // A leader is never cancelled mid-search (its result
                // feeds the cache), but its *response* still honors the
                // deadline.
                let result = match (result, deadline) {
                    (Ok(_), Some(d)) if Instant::now() > d => Err(ServeError::DeadlineExceeded),
                    (other, _) => other,
                };

                match result {
                    Ok(resp) => {
                        self.metrics.requests_ok.fetch_add(1, Ordering::AcqRel);
                        // Flush span: response encode + queue, detail =
                        // encoded body bytes.  (The socket write itself is
                        // batched across requests after dispatch.)
                        let flush_start = trace.now_ns();
                        let mut w = Writer::new();
                        w.u64(req_id);
                        protocol::encode_response(&mut w, &resp);
                        let bytes = w.into_bytes();
                        let body_len = bytes.len() as u64;
                        out.push(protocol::frame(op::OPTIMIZE_OK, &bytes));
                        trace.span(Stage::Flush, flush_start, body_len);
                        if let Some(t) = tel {
                            let outcome = match resp.decision {
                                CacheDecision::Served => Outcome::Served,
                                CacheDecision::Coalesced => Outcome::Coalesced,
                                _ => Outcome::Fresh,
                            };
                            t.finish_request(&trace, outcome);
                        }
                    }
                    Err(e) => {
                        self.metrics.requests_err.fetch_add(1, Ordering::AcqRel);
                        match &e {
                            ServeError::Overloaded => {
                                self.metrics.shed_requests.fetch_add(1, Ordering::AcqRel);
                            }
                            ServeError::DeadlineExceeded => {
                                self.metrics
                                    .deadline_expirations
                                    .fetch_add(1, Ordering::AcqRel);
                            }
                            ServeError::Opt(_) => {}
                        }
                        out.push(error_frame(
                            req_id,
                            ErrorCode::from_serve_error(&e),
                            &e.to_string(),
                        ));
                        if let Some(t) = tel {
                            let outcome = match &e {
                                ServeError::Overloaded => Outcome::Shed,
                                _ => Outcome::Error,
                            };
                            t.finish_request(&trace, outcome);
                        }
                    }
                }
                false
            }
            op::METRICS if body.is_empty() => {
                let doc = serde_json::to_string(&self.metrics_json()).unwrap_or_default();
                let mut w = Writer::new();
                w.str(&doc);
                out.push(protocol::frame(op::METRICS_OK, &w.into_bytes()));
                false
            }
            op::PING if body.is_empty() => {
                out.push(protocol::frame(op::PONG, &[]));
                false
            }
            op::DRAIN if body.is_empty() => {
                self.initiate_drain();
                out.push(protocol::frame(op::DRAIN_OK, &[]));
                false
            }
            op::STATS if body.len() == 1 => match StatsFormat::from_u8(body[0]) {
                Some(fmt) => {
                    let doc = match fmt {
                        StatsFormat::Json => {
                            serde_json::to_string(&self.metrics_json()).unwrap_or_default()
                        }
                        StatsFormat::Prometheus => self.prometheus(),
                    };
                    let mut w = Writer::new();
                    w.str(&doc);
                    out.push(protocol::frame(op::STATS_OK, &w.into_bytes()));
                    false
                }
                None => {
                    self.metrics.malformed_frames.fetch_add(1, Ordering::AcqRel);
                    out.push(error_frame(0, ErrorCode::Malformed, "unknown stats format"));
                    true
                }
            },
            _ => {
                self.metrics.malformed_frames.fetch_add(1, Ordering::AcqRel);
                out.push(error_frame(
                    0,
                    ErrorCode::Malformed,
                    "unknown or malformed opcode",
                ));
                true
            }
        }
    }

    /// Write the batch.  Fault-free daemons concatenate into a single
    /// `write_all`; a scripted outbound fault forces per-frame writes so
    /// faults land on exact frame boundaries.  Returns `false` when the
    /// connection must close (write failure, slow client, or a fault
    /// that severs it).
    fn flush(
        &self,
        conn_id: u64,
        stream: &mut dyn Stream,
        out_frames: Vec<Vec<u8>>,
        out_frame_idx: &mut u64,
    ) -> bool {
        if out_frames.is_empty() {
            return true;
        }
        if self.faults.is_empty() {
            let total: usize = out_frames.iter().map(Vec::len).sum();
            let mut buf = Vec::with_capacity(total);
            for f in &out_frames {
                buf.extend_from_slice(f);
            }
            *out_frame_idx += out_frames.len() as u64;
            return stream.write_all(&buf).is_ok();
        }
        for mut f in out_frames {
            let idx = *out_frame_idx;
            *out_frame_idx += 1;
            match self.faults.outbound_fault(conn_id, idx) {
                None => {}
                Some(FrameFault::Drop) => return false,
                Some(FrameFault::Truncate(n)) => {
                    f.truncate(n);
                    let _ = stream.write_all(&f);
                    return false;
                }
                Some(FrameFault::Garble { offset, mask }) if !f.is_empty() => {
                    let i = offset % f.len();
                    f[i] ^= mask;
                }
                Some(FrameFault::Garble { .. }) => {}
                Some(FrameFault::Delay(d)) => std::thread::sleep(d),
            }
            if stream.write_all(&f).is_err() {
                return false;
            }
        }
        true
    }
}

/// Pop one complete frame (opcode + body, length prefix stripped) off the
/// input buffer.  `Ok(None)` means more bytes are needed; `Err` means the
/// length prefix itself is illegal and the connection is poisoned.
fn peel_frame(inbuf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, &'static str> {
    if inbuf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(inbuf[..4].try_into().expect("4 bytes checked"));
    if len == 0 {
        return Err("zero-length frame");
    }
    if len > MAX_FRAME {
        return Err("frame exceeds MAX_FRAME");
    }
    let total = 4 + len as usize;
    if inbuf.len() < total {
        return Ok(None);
    }
    let frame = inbuf[4..total].to_vec();
    inbuf.drain(..total);
    Ok(Some(frame))
}

/// Assemble one `ERROR` frame.
fn error_frame(req_id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(req_id);
    w.u8(code as u8);
    w.str(message);
    protocol::frame(op::ERROR, &w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peel_frame_respects_boundaries() {
        let mut buf = Vec::new();
        assert_eq!(peel_frame(&mut buf), Ok(None));
        buf.extend_from_slice(&protocol::frame(op::PING, &[]));
        buf.extend_from_slice(&protocol::frame(op::METRICS, &[]));
        assert_eq!(peel_frame(&mut buf), Ok(Some(vec![op::PING])));
        assert_eq!(peel_frame(&mut buf), Ok(Some(vec![op::METRICS])));
        assert_eq!(peel_frame(&mut buf), Ok(None));
    }

    #[test]
    fn peel_frame_rejects_illegal_lengths() {
        let mut zero = 0u32.to_le_bytes().to_vec();
        assert!(peel_frame(&mut zero).is_err());
        let mut huge = (MAX_FRAME + 1).to_le_bytes().to_vec();
        assert!(peel_frame(&mut huge).is_err());
    }

    #[test]
    fn peel_frame_waits_for_partial_frames() {
        let full = protocol::frame(op::PING, &[1, 2, 3]);
        for cut in 0..full.len() {
            let mut partial = full[..cut].to_vec();
            assert_eq!(peel_frame(&mut partial), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn drain_report_counters_are_namespaced_and_collision_free() {
        let (cat, _q) = lec_core::fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let tel = std::sync::Arc::new(lec_telemetry::Telemetry::on());
        let server = ConcurrentPlanServer::new(&cat, memory).with_telemetry(tel);
        let daemon = Daemon::new(&server, DaemonConfig::default());
        let counters = flatten_counters(&daemon.metrics_json());
        assert!(!counters.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (key, value) in &counters {
            assert!(
                key.starts_with("service.") || key.starts_with("daemon."),
                "counter {key} is missing its layer namespace"
            );
            assert!(seen.insert(key.clone()), "counter key {key} collides");
            assert!(value.is_finite(), "counter {key} is not finite");
        }
        // The per-layer request counters that share short names stay
        // distinct under their namespaces.
        assert!(seen.contains("daemon.requests_ok"));
        assert!(seen.contains("service.cache.served"));
        assert!(seen.contains("service.telemetry.latency.served.count"));
    }

    #[test]
    fn prometheus_exposition_parses_line_by_line() {
        let (cat, q) = lec_core::fixtures::three_chain();
        let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
        let tel = std::sync::Arc::new(lec_telemetry::Telemetry::on());
        let server = ConcurrentPlanServer::new(&cat, memory).with_telemetry(tel);
        server.serve(&q, &lec_core::Mode::AlgorithmC).unwrap();
        let daemon = Daemon::new(&server, DaemonConfig::default());
        let text = daemon.prometheus();
        let samples = lec_telemetry::parse_prometheus(&text).expect("exposition parses");
        assert!(samples.len() > 30);
        let fresh = samples
            .iter()
            .find(|s| s.name == "lec_service_cache_recomputed")
            .expect("service counter exposed");
        assert_eq!(fresh.value, 1.0);
    }

    #[test]
    fn gate_sheds_past_capacity_and_tracks_high_water() {
        let gate = Gate::new(2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire(), "third cold request is shed");
        assert_eq!(gate.depth(), 2);
        assert_eq!(gate.high_water(), 2);
        gate.release();
        assert!(gate.try_acquire(), "released slot is reusable");
        gate.release();
        gate.release();
        assert_eq!(gate.depth(), 0);
        assert_eq!(gate.high_water(), 2, "high water survives release");
    }
}
