//! The client: frame assembly, response parsing, request batching, and
//! retry with capped jittered exponential backoff.
//!
//! # Retry discipline
//!
//! Only *transient* wire errors ([`ErrorCode::is_transient`]) are retried:
//! `Overloaded` (the daemon shed the request) and `DeadlineExceeded` (the
//! coalesced wait ran out — a retry usually lands on the cache the
//! abandoned search fed).  A `WorkerPanicked` cohort failure is **not**
//! retried blindly: the same request may kill the next leader too, so it
//! surfaces to the caller, who decides.  Deterministic optimizer errors
//! and malformed-frame rejections likewise surface immediately.

use crate::protocol::{self, op, DecodeError, ErrorCode, Reader, StatsFormat, Writer, MAX_FRAME};
use crate::transport::Stream;
use lec_core::Mode;
use lec_plan::Query;
use lec_service::ServeResponse;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::time::Duration;

/// An error frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    pub code: ErrorCode,
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error {:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (peer closed, timeout, reset).
    Io(io::Error),
    /// The daemon's bytes did not decode — a protocol bug or corruption.
    Decode(DecodeError),
    /// The daemon answered with an `ERROR` frame.
    Server(ServerError),
    /// The daemon answered with a frame the request doesn't expect.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Decode(e) => write!(f, "decode error: {e}"),
            ClientError::Server(e) => write!(f, "{e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

impl ClientError {
    /// True when retrying the same request (with backoff) is sound.
    pub fn is_transient(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.code.is_transient())
    }
}

/// Capped exponential backoff with full-range-to-half jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retry entirely).
    pub max_retries: u32,
    /// Delay before the first retry, pre-jitter.
    pub base: Duration,
    /// Ceiling on the pre-jitter delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
        }
    }
}

/// The delay before retry number `attempt` (0-based):
/// `min(base << attempt, cap)` scaled by a jitter uniform in
/// `[0.5, 1.0)`, so synchronized clients desynchronize instead of
/// re-stampeding the daemon in lockstep.
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32, rng: &mut StdRng) -> Duration {
    let exp = policy
        .base
        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .min(policy.cap);
    let jitter = 0.5 + 0.5 * rng.gen::<f64>();
    exp.mul_f64(jitter)
}

/// A connection to one daemon.
pub struct Client {
    stream: Box<dyn Stream>,
    policy: RetryPolicy,
    rng: StdRng,
    inbuf: Vec<u8>,
}

impl Client {
    /// Wrap a connected stream with the default retry policy, seeded for
    /// reproducible jitter.
    pub fn new(stream: Box<dyn Stream>, seed: u64) -> Self {
        Client::with_policy(stream, RetryPolicy::default(), seed)
    }

    pub fn with_policy(stream: Box<dyn Stream>, policy: RetryPolicy, seed: u64) -> Self {
        Client {
            stream,
            policy,
            rng: StdRng::seed_from_u64(seed),
            inbuf: Vec::new(),
        }
    }

    // -- wire plumbing ------------------------------------------------

    fn send(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(frame).map_err(ClientError::Io)
    }

    /// Read one complete frame (opcode + body, prefix stripped).
    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.inbuf.len() >= 4 {
                let len = u32::from_le_bytes(self.inbuf[..4].try_into().expect("4 bytes checked"));
                if len == 0 || len > MAX_FRAME {
                    return Err(ClientError::Protocol("illegal frame length from daemon"));
                }
                let total = 4 + len as usize;
                if self.inbuf.len() >= total {
                    let frame = self.inbuf[4..total].to_vec();
                    self.inbuf.drain(..total);
                    return Ok(frame);
                }
            }
            let n = self.stream.read(&mut chunk).map_err(ClientError::Io)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                )));
            }
            self.inbuf.extend_from_slice(&chunk[..n]);
        }
    }

    fn encode_optimize(req_id: u64, mode: &Mode, query: &Query) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(req_id);
        protocol::encode_mode(&mut w, mode);
        protocol::encode_query(&mut w, query);
        protocol::frame(op::OPTIMIZE, &w.into_bytes())
    }

    fn parse_optimize_reply(frame: &[u8]) -> Result<(u64, ServeResponse), ClientError> {
        let Some((&opcode, body)) = frame.split_first() else {
            return Err(ClientError::Protocol("empty frame from daemon"));
        };
        let mut r = Reader::new(body);
        match opcode {
            op::OPTIMIZE_OK => {
                let req_id = r.u64()?;
                let resp = protocol::decode_response(&mut r)?;
                r.finish()?;
                Ok((req_id, resp))
            }
            op::ERROR => {
                let _req_id = r.u64()?;
                let code = ErrorCode::from_u8(r.u8()?)
                    .ok_or(ClientError::Protocol("unknown error code"))?;
                let message = r.str()?;
                r.finish()?;
                Err(ClientError::Server(ServerError { code, message }))
            }
            _ => Err(ClientError::Protocol("unexpected opcode for optimize")),
        }
    }

    // -- requests -----------------------------------------------------

    /// One optimize round trip, no retry.
    pub fn optimize_once(
        &mut self,
        req_id: u64,
        mode: &Mode,
        query: &Query,
    ) -> Result<ServeResponse, ClientError> {
        self.send(&Self::encode_optimize(req_id, mode, query))?;
        let frame = self.read_frame()?;
        let (id, resp) = Self::parse_optimize_reply(&frame)?;
        if id != req_id {
            return Err(ClientError::Protocol("response req_id mismatch"));
        }
        Ok(resp)
    }

    /// Optimize with the retry policy: transient refusals retry after a
    /// jittered backoff; everything else surfaces on the first attempt.
    pub fn optimize(
        &mut self,
        req_id: u64,
        mode: &Mode,
        query: &Query,
    ) -> Result<ServeResponse, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.optimize_once(req_id, mode, query) {
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    let delay = backoff_delay(&self.policy, attempt, &mut self.rng);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Pipeline a whole batch: all requests go out in **one** write, then
    /// all responses are read back in order.  This amortizes one syscall
    /// pair over the batch — the intended way to pump warm hits.  No
    /// retry: per-request outcomes (including refusals) map 1:1 into the
    /// returned vector.
    pub fn optimize_batch(
        &mut self,
        requests: &[(u64, Mode, Query)],
    ) -> Result<Vec<Result<ServeResponse, ServerError>>, ClientError> {
        let mut batch = Vec::new();
        for (req_id, mode, query) in requests {
            batch.extend_from_slice(&Self::encode_optimize(*req_id, mode, query));
        }
        self.send(&batch)?;
        let mut out = Vec::with_capacity(requests.len());
        for (req_id, _, _) in requests {
            let frame = self.read_frame()?;
            match Self::parse_optimize_reply(&frame) {
                Ok((id, resp)) => {
                    if id != *req_id {
                        return Err(ClientError::Protocol("batch response out of order"));
                    }
                    out.push(Ok(resp));
                }
                Err(ClientError::Server(e)) => out.push(Err(e)),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Split a reply frame, surfacing `ERROR` frames as
    /// [`ClientError::Server`] whatever opcode was expected.
    fn expect_opcode<'f>(
        frame: &'f [u8],
        want: u8,
        what: &'static str,
    ) -> Result<&'f [u8], ClientError> {
        let Some((&opcode, body)) = frame.split_first() else {
            return Err(ClientError::Protocol("empty frame from daemon"));
        };
        if opcode == op::ERROR {
            let mut r = Reader::new(body);
            let _req_id = r.u64()?;
            let code =
                ErrorCode::from_u8(r.u8()?).ok_or(ClientError::Protocol("unknown error code"))?;
            let message = r.str()?;
            r.finish()?;
            return Err(ClientError::Server(ServerError { code, message }));
        }
        if opcode != want {
            return Err(ClientError::Protocol(what));
        }
        Ok(body)
    }

    /// Fetch the daemon's metrics JSON.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&protocol::frame(op::METRICS, &[]))?;
        let frame = self.read_frame()?;
        let body = Self::expect_opcode(&frame, op::METRICS_OK, "unexpected opcode for metrics")?;
        let mut r = Reader::new(body);
        let doc = r.str()?;
        r.finish()?;
        Ok(doc)
    }

    /// Fetch the daemon's observability snapshot in the requested
    /// format: [`StatsFormat::Json`] returns the exact document
    /// `Daemon::metrics_json` serializes in-process (so wire and local
    /// snapshots can be compared field-for-field), and
    /// [`StatsFormat::Prometheus`] returns the text exposition.
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        self.send(&protocol::frame(op::STATS, &[format as u8]))?;
        let frame = self.read_frame()?;
        let body = Self::expect_opcode(&frame, op::STATS_OK, "unexpected opcode for stats")?;
        let mut r = Reader::new(body);
        let doc = r.str()?;
        r.finish()?;
        Ok(doc)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&protocol::frame(op::PING, &[]))?;
        let frame = self.read_frame()?;
        let body = Self::expect_opcode(&frame, op::PONG, "unexpected opcode for ping")?;
        if body.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol("pong carries no body"))
        }
    }

    /// Ask the daemon to drain gracefully.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.send(&protocol::frame(op::DRAIN, &[]))?;
        let frame = self.read_frame()?;
        let body = Self::expect_opcode(&frame, op::DRAIN_OK, "unexpected opcode for drain")?;
        if body.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol("drain ack carries no body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        let mut rng = StdRng::seed_from_u64(42);
        for attempt in 0..12 {
            let pre_jitter = policy
                .base
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(policy.cap);
            let d = backoff_delay(&policy, attempt, &mut rng);
            assert!(
                d >= pre_jitter.mul_f64(0.5) && d <= pre_jitter,
                "attempt {attempt}: {d:?} outside [{:?}, {pre_jitter:?}]",
                pre_jitter.mul_f64(0.5),
            );
        }
        // Deep attempts are pinned to the cap (no overflow past u32 shifts).
        let deep = backoff_delay(&policy, 40, &mut rng);
        assert!(deep <= policy.cap && deep >= policy.cap.mul_f64(0.5));
    }

    #[test]
    fn backoff_jitter_is_seeded_and_varies() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let da: Vec<_> = (0..4).map(|i| backoff_delay(&policy, i, &mut a)).collect();
        let db: Vec<_> = (0..4).map(|i| backoff_delay(&policy, i, &mut b)).collect();
        assert_eq!(da, db, "same seed, same schedule");
        let mut c = StdRng::seed_from_u64(8);
        let dc: Vec<_> = (0..4).map(|i| backoff_delay(&policy, i, &mut c)).collect();
        assert_ne!(da, dc, "different seed, different jitter");
    }

    #[test]
    fn transient_classification_matches_error_codes() {
        let overloaded = ClientError::Server(ServerError {
            code: ErrorCode::Overloaded,
            message: String::new(),
        });
        let deadline = ClientError::Server(ServerError {
            code: ErrorCode::DeadlineExceeded,
            message: String::new(),
        });
        let panicked = ClientError::Server(ServerError {
            code: ErrorCode::WorkerPanicked,
            message: String::new(),
        });
        assert!(overloaded.is_transient());
        assert!(deadline.is_transient());
        assert!(
            !panicked.is_transient(),
            "cohort panics are surfaced, not retried"
        );
        assert!(!ClientError::Protocol("x").is_transient());
        assert!(
            !ClientError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")).is_transient()
        );
    }
}
