//! Deterministic fault injection for chaos tests.
//!
//! A [`FaultPlan`] is a *script*, not a random process: every fault is
//! keyed by `(connection id, frame index)` for wire faults or
//! `(connection id, request index)` for search faults, where both
//! counters start at 0 and increase by one per frame/request on that
//! connection.  Connection ids are assigned in accept order.  Running the
//! same workload against the same plan therefore produces the same blast
//! radius every time — chaos tests assert exact outcomes, the way
//! `concurrent_parity.rs` asserts coalescing.
//!
//! Wire faults act at the daemon's frame boundary (after a complete
//! inbound frame is peeled off, or before an outbound frame is written);
//! search faults act inside the serving layer's `before_search` hook, so
//! a [`SearchFault::KillLeader`] genuinely dies *after* coalescing
//! admission — its followers observe the cohort-wide `WorkerPanicked`,
//! which is the scenario worth pinning.

use std::collections::HashMap;
use std::time::Duration;

/// What to do to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Close the connection instead of processing/sending the frame.
    Drop,
    /// Deliver only the first `n` bytes, then close the connection
    /// (mid-frame truncation; the peer sees a short read then EOF).
    Truncate(usize),
    /// XOR the byte at `offset % len` with `mask` before processing —
    /// frame length intact, contents corrupted.
    Garble { offset: usize, mask: u8 },
    /// Sleep before processing/sending the frame.
    Delay(Duration),
}

/// What to do to one request's search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchFault {
    /// Panic in `before_search` — the leader dies mid-cohort exactly as
    /// if the DP itself had panicked.
    KillLeader,
    /// Sleep in `before_search`, holding the admission slot — the lever
    /// overload tests use to saturate the cold backlog deterministically.
    Delay(Duration),
}

/// A deterministic schedule of injected faults.  Empty by default;
/// builder methods register one fault per key (last write wins).
#[derive(Debug, Default)]
pub struct FaultPlan {
    inbound: HashMap<(u64, u64), FrameFault>,
    outbound: HashMap<(u64, u64), FrameFault>,
    search: HashMap<(u64, u64), SearchFault>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fault the `frame_idx`-th inbound frame of connection `conn_id`.
    pub fn inbound(mut self, conn_id: u64, frame_idx: u64, fault: FrameFault) -> Self {
        self.inbound.insert((conn_id, frame_idx), fault);
        self
    }

    /// Fault the `frame_idx`-th outbound frame of connection `conn_id`.
    pub fn outbound(mut self, conn_id: u64, frame_idx: u64, fault: FrameFault) -> Self {
        self.outbound.insert((conn_id, frame_idx), fault);
        self
    }

    /// Fault the `req_idx`-th optimize request of connection `conn_id`.
    pub fn search(mut self, conn_id: u64, req_idx: u64, fault: SearchFault) -> Self {
        self.search.insert((conn_id, req_idx), fault);
        self
    }

    /// Look up the inbound fault for a frame, if scripted.
    pub fn inbound_fault(&self, conn_id: u64, frame_idx: u64) -> Option<FrameFault> {
        self.inbound.get(&(conn_id, frame_idx)).copied()
    }

    /// Look up the outbound fault for a frame, if scripted.
    pub fn outbound_fault(&self, conn_id: u64, frame_idx: u64) -> Option<FrameFault> {
        self.outbound.get(&(conn_id, frame_idx)).copied()
    }

    /// Look up the search fault for a request, if scripted.
    pub fn search_fault(&self, conn_id: u64, req_idx: u64) -> Option<SearchFault> {
        self.search.get(&(conn_id, req_idx)).copied()
    }

    /// True when no fault is scripted at all (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.inbound.is_empty() && self.outbound.is_empty() && self.search.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_key_by_connection_and_index() {
        let plan = FaultPlan::new()
            .inbound(0, 2, FrameFault::Drop)
            .outbound(1, 0, FrameFault::Truncate(3))
            .search(2, 1, SearchFault::KillLeader);
        assert_eq!(plan.inbound_fault(0, 2), Some(FrameFault::Drop));
        assert_eq!(plan.inbound_fault(0, 1), None);
        assert_eq!(plan.inbound_fault(1, 2), None);
        assert_eq!(plan.outbound_fault(1, 0), Some(FrameFault::Truncate(3)));
        assert_eq!(plan.search_fault(2, 1), Some(SearchFault::KillLeader));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
