//! The wire protocol: length-prefixed binary frames and the bounds-checked
//! codec for every request and response type.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+-----------+------------------+
//! | len: u32 LE    | op: u8    | body: len-1 bytes|
//! +----------------+-----------+------------------+
//! ```
//!
//! `len` counts the opcode byte plus the body (so `len >= 1`), and is
//! capped at [`MAX_FRAME`]; a peer announcing a larger frame is malformed
//! by definition and its connection is poisoned without reading the rest.
//!
//! # Encoding primitives
//!
//! Everything is little-endian and self-delimiting: `u64` for counts and
//! indices, `f64` transported as its IEEE-754 bit pattern (`to_bits`),
//! strings and vectors length-prefixed with `u32`.  Probability
//! distributions are decoded with [`Distribution::from_parts_exact`] —
//! validation without renormalization — so a query round-trips the wire
//! **bit-exactly**: this is what extends the serving stack's byte-identity
//! bar across the socket.
//!
//! # Decoder discipline
//!
//! The decoder never trusts a length it read from the wire: every take is
//! bounds-checked against the remaining buffer, element counts are capped
//! ([`MAX_ELEMS`]) before any allocation, plan trees are depth-limited
//! ([`MAX_PLAN_DEPTH`]), and a frame with trailing bytes is rejected.  A
//! malformed frame therefore yields a clean [`DecodeError`] — never a
//! panic, an OOM, or a hang — which the daemon answers with
//! [`ErrorCode::Malformed`] before poisoning exactly that connection.

use lec_catalog::TableId;
use lec_core::{AlgDConfig, Mode, OptError, PointEstimate, SearchStats};
use lec_plan::{ColumnRef, JoinMethod, JoinPredicate, LocalPredicate, PlanNode, Query, QueryTable};
use lec_prob::{Distribution, MarkovChain, Rebucket};
use lec_service::{CacheDecision, ServeError};
use std::time::Duration;

/// Hard cap on one frame's payload (opcode + body).  Far above any real
/// request (a 64-table query with 16-bucket distributions is a few tens
/// of kilobytes) and far below anything that could pressure memory.
pub const MAX_FRAME: u32 = 1 << 20;

/// Cap on any single length-prefixed collection in a frame.
pub const MAX_ELEMS: usize = 1 << 16;

/// Cap on plan-tree nesting accepted by the decoder.
pub const MAX_PLAN_DEPTH: usize = 256;

/// Request opcodes (client → daemon).
pub mod op {
    /// Optimize one query: `req_id: u64`, then [`super::encode_mode`],
    /// then [`super::encode_query`].
    pub const OPTIMIZE: u8 = 0x01;
    /// Fetch the daemon's metrics JSON.  Empty body.
    pub const METRICS: u8 = 0x02;
    /// Liveness probe.  Empty body.
    pub const PING: u8 = 0x03;
    /// Initiate graceful drain.  Empty body.
    pub const DRAIN: u8 = 0x04;
    /// Fetch the full observability snapshot.  Body: one format byte —
    /// `0` = JSON (identical to the daemon's in-process `metrics_json`),
    /// `1` = Prometheus text exposition.
    pub const STATS: u8 = 0x05;

    /// Successful optimize response: `req_id: u64`, then
    /// [`super::encode_response`].
    pub const OPTIMIZE_OK: u8 = 0x81;
    /// Error response: `req_id: u64`, `code: u8`, `message: String`.
    pub const ERROR: u8 = 0x82;
    /// Metrics response: one JSON string.
    pub const METRICS_OK: u8 = 0x83;
    /// Ping response.  Empty body.
    pub const PONG: u8 = 0x84;
    /// Drain acknowledged; the daemon finishes in-flight work and exits.
    pub const DRAIN_OK: u8 = 0x85;
    /// Stats response: one string in the requested format.
    pub const STATS_OK: u8 = 0x86;
}

/// Wire format selector for [`op::STATS`] bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatsFormat {
    /// Sorted-key JSON, byte-identical to the daemon's in-process
    /// `metrics_json().to_string()` at snapshot time.
    Json = 0,
    /// Prometheus text exposition (every line parses with
    /// `lec_telemetry::parse_prometheus`).
    Prometheus = 1,
}

impl StatsFormat {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<StatsFormat> {
        match b {
            0 => Some(StatsFormat::Json),
            1 => Some(StatsFormat::Prometheus),
            _ => None,
        }
    }
}

/// Stable wire codes for everything that can go wrong serving a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request.  Transient: retry with backoff.
    Overloaded = 1,
    /// The request's deadline expired.  Transient: a retry usually hits
    /// the cache the abandoned search fed.
    DeadlineExceeded = 2,
    /// The cohort's search died mid-flight.  **Not** blindly retryable —
    /// surface it; the same request may kill the next leader too.
    WorkerPanicked = 3,
    /// The optimizer rejected the request (bad query, bad parameter, no
    /// plan).  Deterministic: retrying the same bytes returns the same
    /// code.
    Opt = 4,
    /// The frame could not be decoded; the daemon poisons this connection
    /// after sending the code.
    Malformed = 5,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::WorkerPanicked,
            4 => ErrorCode::Opt,
            5 => ErrorCode::Malformed,
            _ => return None,
        })
    }

    /// True for errors a client may retry blindly (with backoff).
    pub fn is_transient(&self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
    }

    /// Classify a [`ServeError`] into its wire code.
    pub fn from_serve_error(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Overloaded => ErrorCode::Overloaded,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::Opt(OptError::WorkerPanicked) => ErrorCode::WorkerPanicked,
            ServeError::Opt(_) => ErrorCode::Opt,
        }
    }
}

/// Why a frame failed to decode.  Deliberately coarse — the message is for
/// operators; the machine-readable signal is "this connection is poisoned".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the announced data did.
    Truncated,
    /// A tag, index, or flag byte had no defined meaning.
    BadTag(&'static str),
    /// A length prefix exceeded its cap, or a value violated a documented
    /// invariant (e.g. a distribution failing validation).
    BadValue(&'static str),
    /// The frame decoded fully but bytes remained.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(what) => write!(f, "bad tag for {what}"),
            DecodeError::BadValue(what) => write!(f, "bad value: {what}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Mode display names, indexed by the same tag the codec transmits.
/// Decoding a response reconstructs the `&'static str` the in-process
/// [`lec_service::ServeResponse`] carries by indexing this table — the
/// reason responses can be compared field-for-field across the wire.
pub const MODE_NAMES: [&str; 11] = [
    "LSC(mean)",
    "LSC(mode)",
    "LSC(at)",
    "AlgA",
    "AlgB",
    "AlgC",
    "AlgC-dyn",
    "AlgD",
    "Bushy",
    "II",
    "SA",
];

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only frame body builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
        self
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked cursor over one frame body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole frame was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` that must fit a `usize` and stay under [`MAX_ELEMS`].
    pub fn count(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > MAX_ELEMS as u64 {
            return Err(DecodeError::BadValue("count exceeds MAX_ELEMS"));
        }
        Ok(n as usize)
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMS {
            return Err(DecodeError::BadValue("string exceeds MAX_ELEMS"));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadValue("string not UTF-8"))
    }

    pub fn f64s(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMS {
            return Err(DecodeError::BadValue("vector exceeds MAX_ELEMS"));
        }
        // `take` bounds the allocation: n f64s must actually be present.
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

// ---------------------------------------------------------------------
// Distributions (bit-exact round trip)
// ---------------------------------------------------------------------

pub fn encode_dist(w: &mut Writer, d: &Distribution) {
    w.f64s(d.support());
    w.f64s(d.probs());
}

pub fn decode_dist(r: &mut Reader) -> Result<Distribution, DecodeError> {
    let support = r.f64s()?;
    let probs = r.f64s()?;
    Distribution::from_parts_exact(support, probs)
        .map_err(|_| DecodeError::BadValue("invalid distribution parts"))
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

fn encode_column_ref(w: &mut Writer, c: &ColumnRef) {
    w.u64(c.table as u64);
    w.u64(c.column as u64);
}

fn decode_column_ref(r: &mut Reader) -> Result<ColumnRef, DecodeError> {
    let table = r.count()?;
    let column = r.count()?;
    Ok(ColumnRef { table, column })
}

pub fn encode_query(w: &mut Writer, q: &Query) {
    w.u64(q.tables.len() as u64);
    for t in &q.tables {
        w.u64(t.table.0 as u64);
        match &t.filter {
            None => {
                w.u8(0);
            }
            Some(f) => {
                w.u8(1);
                w.u64(f.column as u64);
                encode_dist(w, &f.selectivity);
            }
        }
    }
    w.u64(q.joins.len() as u64);
    for j in &q.joins {
        encode_column_ref(w, &j.left);
        encode_column_ref(w, &j.right);
        encode_dist(w, &j.selectivity);
    }
    match &q.required_order {
        None => {
            w.u8(0);
        }
        Some(c) => {
            w.u8(1);
            encode_column_ref(w, c);
        }
    }
}

pub fn decode_query(r: &mut Reader) -> Result<Query, DecodeError> {
    let n_tables = r.count()?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let id = r.u64()?;
        if id > u32::MAX as u64 {
            return Err(DecodeError::BadValue("table id exceeds u32"));
        }
        let filter = match r.u8()? {
            0 => None,
            1 => {
                let column = r.count()?;
                let selectivity = decode_dist(r)?;
                Some(LocalPredicate {
                    column,
                    selectivity,
                })
            }
            _ => return Err(DecodeError::BadTag("filter option")),
        };
        tables.push(QueryTable {
            table: TableId(id as u32),
            filter,
        });
    }
    let n_joins = r.count()?;
    let mut joins = Vec::with_capacity(n_joins);
    for _ in 0..n_joins {
        let left = decode_column_ref(r)?;
        let right = decode_column_ref(r)?;
        let selectivity = decode_dist(r)?;
        joins.push(JoinPredicate {
            left,
            right,
            selectivity,
        });
    }
    let required_order = match r.u8()? {
        0 => None,
        1 => Some(decode_column_ref(r)?),
        _ => return Err(DecodeError::BadTag("required_order option")),
    };
    Ok(Query {
        tables,
        joins,
        required_order,
    })
}

// ---------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------

fn encode_randomized(w: &mut Writer, c: &lec_core::randomized::RandomizedConfig) {
    w.u64(c.restarts as u64);
    w.u64(c.patience as u64);
    w.f64(c.initial_temp_frac);
    w.f64(c.cooling);
    w.u64(c.sa_steps as u64);
}

fn decode_randomized(
    r: &mut Reader,
) -> Result<lec_core::randomized::RandomizedConfig, DecodeError> {
    Ok(lec_core::randomized::RandomizedConfig {
        restarts: r.count()?,
        patience: r.count()?,
        initial_temp_frac: r.f64()?,
        cooling: r.f64()?,
        sa_steps: r.count()?,
    })
}

/// Mode tags match the fingerprint tags in `lec_core::optimizer` and the
/// indices of [`MODE_NAMES`].
pub fn encode_mode(w: &mut Writer, m: &Mode) {
    match m {
        Mode::Lsc(PointEstimate::Mean) => {
            w.u8(0);
        }
        Mode::Lsc(PointEstimate::Mode) => {
            w.u8(1);
        }
        Mode::LscAt(v) => {
            w.u8(2);
            w.f64(*v);
        }
        Mode::AlgorithmA => {
            w.u8(3);
        }
        Mode::AlgorithmB { c } => {
            w.u8(4);
            w.u64(*c as u64);
        }
        Mode::AlgorithmC => {
            w.u8(5);
        }
        Mode::AlgorithmCDynamic { chain } => {
            w.u8(6);
            w.f64s(chain.states());
            for i in 0..chain.n_states() {
                w.f64s(chain.row(i));
            }
        }
        Mode::AlgorithmD { config } => {
            w.u8(7);
            w.u64(config.max_buckets as u64);
            w.u8(match config.rebucket {
                Rebucket::EqualWidth => 0,
                Rebucket::EqualDepth => 1,
            });
            w.u8(config.cube_root_inputs as u8);
        }
        Mode::Bushy => {
            w.u8(8);
        }
        Mode::IterativeImprovement { config, seed } => {
            w.u8(9);
            encode_randomized(w, config);
            w.u64(*seed);
        }
        Mode::SimulatedAnnealing { config, seed } => {
            w.u8(10);
            encode_randomized(w, config);
            w.u64(*seed);
        }
    }
}

pub fn decode_mode(r: &mut Reader) -> Result<Mode, DecodeError> {
    Ok(match r.u8()? {
        0 => Mode::Lsc(PointEstimate::Mean),
        1 => Mode::Lsc(PointEstimate::Mode),
        2 => Mode::LscAt(r.f64()?),
        3 => Mode::AlgorithmA,
        4 => Mode::AlgorithmB { c: r.count()? },
        5 => Mode::AlgorithmC,
        6 => {
            let states = r.f64s()?;
            let mut rows = Vec::with_capacity(states.len());
            for _ in 0..states.len() {
                rows.push(r.f64s()?);
            }
            let chain = MarkovChain::new(states, rows)
                .map_err(|_| DecodeError::BadValue("invalid Markov chain"))?;
            Mode::AlgorithmCDynamic { chain }
        }
        7 => {
            let max_buckets = r.count()?;
            let rebucket = match r.u8()? {
                0 => Rebucket::EqualWidth,
                1 => Rebucket::EqualDepth,
                _ => return Err(DecodeError::BadTag("rebucket strategy")),
            };
            let cube_root_inputs = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::BadTag("cube_root_inputs flag")),
            };
            Mode::AlgorithmD {
                config: AlgDConfig {
                    max_buckets,
                    rebucket,
                    cube_root_inputs,
                },
            }
        }
        8 => Mode::Bushy,
        9 => {
            let config = decode_randomized(r)?;
            let seed = r.u64()?;
            Mode::IterativeImprovement { config, seed }
        }
        10 => {
            let config = decode_randomized(r)?;
            let seed = r.u64()?;
            Mode::SimulatedAnnealing { config, seed }
        }
        _ => return Err(DecodeError::BadTag("mode")),
    })
}

// ---------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------

pub fn encode_plan(w: &mut Writer, p: &PlanNode) {
    match p {
        PlanNode::SeqScan { table } => {
            w.u8(0);
            w.u64(*table as u64);
        }
        PlanNode::IndexScan { table } => {
            w.u8(1);
            w.u64(*table as u64);
        }
        PlanNode::Sort { input, key } => {
            w.u8(2);
            encode_column_ref(w, key);
            encode_plan(w, input);
        }
        PlanNode::Join {
            method,
            outer,
            inner,
        } => {
            w.u8(3);
            w.u8(match method {
                JoinMethod::SortMerge => 0,
                JoinMethod::GraceHash => 1,
                JoinMethod::PageNestedLoop => 2,
                JoinMethod::BlockNestedLoop => 3,
            });
            encode_plan(w, outer);
            encode_plan(w, inner);
        }
    }
}

pub fn decode_plan(r: &mut Reader) -> Result<PlanNode, DecodeError> {
    decode_plan_depth(r, 0)
}

fn decode_plan_depth(r: &mut Reader, depth: usize) -> Result<PlanNode, DecodeError> {
    if depth > MAX_PLAN_DEPTH {
        return Err(DecodeError::BadValue("plan tree too deep"));
    }
    Ok(match r.u8()? {
        0 => PlanNode::SeqScan { table: r.count()? },
        1 => PlanNode::IndexScan { table: r.count()? },
        2 => {
            let key = decode_column_ref(r)?;
            let input = decode_plan_depth(r, depth + 1)?;
            PlanNode::Sort {
                input: Box::new(input),
                key,
            }
        }
        3 => {
            let method = match r.u8()? {
                0 => JoinMethod::SortMerge,
                1 => JoinMethod::GraceHash,
                2 => JoinMethod::PageNestedLoop,
                3 => JoinMethod::BlockNestedLoop,
                _ => return Err(DecodeError::BadTag("join method")),
            };
            let outer = decode_plan_depth(r, depth + 1)?;
            let inner = decode_plan_depth(r, depth + 1)?;
            PlanNode::Join {
                method,
                outer: Box::new(outer),
                inner: Box::new(inner),
            }
        }
        _ => return Err(DecodeError::BadTag("plan node")),
    })
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

fn encode_stats(w: &mut Writer, s: &SearchStats) {
    w.u64(s.nodes as u64);
    w.u64(s.candidates);
    w.u64(s.evals);
    w.u64(s.cache_hits);
    w.u64(s.memo_hits);
    w.u64(s.memo_misses);
    w.u64(s.pruned_subsets);
    w.u64(s.bound_evals);
    w.u64(s.sharp_bound_evals);
    w.u64(s.cheap_bound_skips);
    w.u64(s.elapsed.as_nanos() as u64);
}

fn decode_stats(r: &mut Reader) -> Result<SearchStats, DecodeError> {
    Ok(SearchStats {
        nodes: r.count()?,
        candidates: r.u64()?,
        evals: r.u64()?,
        cache_hits: r.u64()?,
        memo_hits: r.u64()?,
        memo_misses: r.u64()?,
        pruned_subsets: r.u64()?,
        bound_evals: r.u64()?,
        sharp_bound_evals: r.u64()?,
        cheap_bound_skips: r.u64()?,
        elapsed: Duration::from_nanos(r.u64()?),
    })
}

fn mode_index(name: &str) -> u8 {
    MODE_NAMES
        .iter()
        .position(|n| *n == name)
        .expect("every Mode::name() is in MODE_NAMES") as u8
}

fn decision_index(d: CacheDecision) -> u8 {
    match d {
        CacheDecision::Served => 0,
        CacheDecision::Coalesced => 1,
        CacheDecision::Revalidated => 2,
        CacheDecision::Recomputed => 3,
        CacheDecision::Uncacheable => 4,
    }
}

pub fn encode_response(w: &mut Writer, resp: &lec_service::ServeResponse) {
    encode_plan(w, &resp.plan);
    w.f64(resp.cost);
    w.u8(mode_index(resp.mode));
    w.u8(decision_index(resp.decision));
    encode_stats(w, &resp.stats);
}

pub fn decode_response(r: &mut Reader) -> Result<lec_service::ServeResponse, DecodeError> {
    let plan = decode_plan(r)?;
    let cost = r.f64()?;
    let mode_idx = r.u8()? as usize;
    let mode = *MODE_NAMES
        .get(mode_idx)
        .ok_or(DecodeError::BadTag("mode name index"))?;
    let decision = match r.u8()? {
        0 => CacheDecision::Served,
        1 => CacheDecision::Coalesced,
        2 => CacheDecision::Revalidated,
        3 => CacheDecision::Recomputed,
        4 => CacheDecision::Uncacheable,
        _ => return Err(DecodeError::BadTag("cache decision")),
    };
    let stats = decode_stats(r)?;
    Ok(lec_service::ServeResponse {
        plan,
        cost,
        mode,
        stats,
        decision,
    })
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Assemble a complete frame (length prefix + opcode + body).
pub fn frame(opcode: u8, body: &[u8]) -> Vec<u8> {
    let len = (body.len() + 1) as u32;
    assert!(len <= MAX_FRAME, "frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lec_core::fixtures;

    fn roundtrip_query(q: &Query) -> Query {
        let mut w = Writer::new();
        encode_query(&mut w, q);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = decode_query(&mut r).unwrap();
        r.finish().unwrap();
        out
    }

    fn dist_bits(d: &Distribution) -> (Vec<u64>, Vec<u64>) {
        (
            d.support().iter().map(|v| v.to_bits()).collect(),
            d.probs().iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn queries_roundtrip_bit_exactly() {
        let (_cat, q) = fixtures::three_chain();
        let rt = roundtrip_query(&q);
        assert_eq!(rt.tables.len(), q.tables.len());
        assert_eq!(rt.joins.len(), q.joins.len());
        for (a, b) in q.joins.iter().zip(&rt.joins) {
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
            assert_eq!(dist_bits(&a.selectivity), dist_bits(&b.selectivity));
        }
        for (a, b) in q.tables.iter().zip(&rt.tables) {
            assert_eq!(a.table, b.table);
            match (&a.filter, &b.filter) {
                (None, None) => {}
                (Some(fa), Some(fb)) => {
                    assert_eq!(fa.column, fb.column);
                    assert_eq!(dist_bits(&fa.selectivity), dist_bits(&fb.selectivity));
                }
                _ => panic!("filter option mismatch"),
            }
        }
        assert_eq!(rt.required_order, q.required_order);
    }

    #[test]
    fn all_modes_roundtrip() {
        use lec_core::randomized::RandomizedConfig;
        let chain =
            MarkovChain::new(vec![700.0, 2000.0], vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        let modes = vec![
            Mode::Lsc(PointEstimate::Mean),
            Mode::Lsc(PointEstimate::Mode),
            Mode::LscAt(1234.5),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 3 },
            Mode::AlgorithmC,
            Mode::AlgorithmCDynamic { chain },
            Mode::AlgorithmD {
                config: AlgDConfig {
                    max_buckets: 16,
                    rebucket: Rebucket::EqualDepth,
                    cube_root_inputs: true,
                },
            },
            Mode::Bushy,
            Mode::IterativeImprovement {
                config: RandomizedConfig::default(),
                seed: 42,
            },
            Mode::SimulatedAnnealing {
                config: RandomizedConfig::default(),
                seed: 7,
            },
        ];
        for m in &modes {
            let mut w = Writer::new();
            encode_mode(&mut w, m);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let rt = decode_mode(&mut r).unwrap();
            r.finish().unwrap();
            // Fingerprints are injective over the encodable parameter
            // space, so equality of fingerprints is mode equality.
            assert_eq!(rt.fingerprint(), m.fingerprint(), "mode {}", m.name());
            assert_eq!(rt.name(), m.name());
        }
    }

    #[test]
    fn plans_roundtrip_and_depth_is_capped() {
        let plan = PlanNode::join(
            JoinMethod::GraceHash,
            PlanNode::sort(PlanNode::SeqScan { table: 0 }, ColumnRef::new(0, 1)),
            PlanNode::IndexScan { table: 2 },
        );
        let mut w = Writer::new();
        encode_plan(&mut w, &plan);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_plan(&mut r).unwrap(), plan);
        r.finish().unwrap();

        // A pathological frame nesting sorts past the cap is rejected
        // cleanly (no stack overflow).
        let mut deep = Vec::new();
        for _ in 0..(MAX_PLAN_DEPTH + 8) {
            deep.push(2u8); // Sort
            deep.extend_from_slice(&0u64.to_le_bytes());
            deep.extend_from_slice(&0u64.to_le_bytes());
        }
        let mut r = Reader::new(&deep);
        assert_eq!(
            decode_plan(&mut r),
            Err(DecodeError::BadValue("plan tree too deep"))
        );
    }

    #[test]
    fn truncated_and_trailing_frames_are_rejected() {
        let (_cat, q) = fixtures::three_chain();
        let mut w = Writer::new();
        encode_query(&mut w, &q);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                decode_query(&mut r).is_err() || r.finish().is_err(),
                "prefix of {cut} bytes must not decode to a complete frame"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        let mut r = Reader::new(&extended);
        decode_query(&mut r).unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn oversized_counts_are_rejected_before_allocation() {
        // A frame claiming 2^40 tables must fail on the cap, not OOM.
        let mut w = Writer::new();
        w.u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_query(&mut r),
            Err(DecodeError::BadValue("count exceeds MAX_ELEMS"))
        );
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::WorkerPanicked,
            ErrorCode::Opt,
            ErrorCode::Malformed,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(99), None);
        assert!(ErrorCode::Overloaded.is_transient());
        assert!(!ErrorCode::WorkerPanicked.is_transient());
    }

    #[test]
    fn stats_formats_roundtrip() {
        for fmt in [StatsFormat::Json, StatsFormat::Prometheus] {
            assert_eq!(StatsFormat::from_u8(fmt as u8), Some(fmt));
        }
        assert_eq!(StatsFormat::from_u8(2), None);
    }
}
