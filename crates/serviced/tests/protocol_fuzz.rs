//! Decoder fuzz: arbitrary bytes fed to every wire decoder must yield
//! `Ok` or a clean `DecodeError` — never a panic, a hang, or an
//! allocation proportional to a length the peer merely *claimed*.
//!
//! Three input families: pure noise, structurally-plausible noise
//! (valid-looking length prefixes over garbage), and mutated valid
//! frames (one byte flipped anywhere in a well-formed encoding — the
//! single-bit-rot case the chaos suite's `Garble` fault plays out
//! end-to-end).

use lec_core::{Mode, PointEstimate};
use lec_plan::{QueryProfile, WorkloadGenerator};
use lec_serviced::protocol::{
    decode_dist, decode_mode, decode_plan, decode_query, decode_response, encode_mode,
    encode_query, Reader, Writer,
};
use proptest::prelude::*;

fn decode_everything(bytes: &[u8]) {
    // Each decoder gets its own cursor; all that matters is that every
    // one of them returns (Ok or Err) without panicking.
    let _ = decode_query(&mut Reader::new(bytes));
    let _ = decode_mode(&mut Reader::new(bytes));
    let _ = decode_plan(&mut Reader::new(bytes));
    let _ = decode_dist(&mut Reader::new(bytes));
    let _ = decode_response(&mut Reader::new(bytes));
}

/// A valid OPTIMIZE-style payload (mode then query) to mutate.
fn valid_payload() -> Vec<u8> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(10);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let ids = g.pick_tables(&catalog, 4);
    let query = wg.gen_query(&catalog, &ids, &QueryProfile::default());
    let mut w = Writer::new();
    encode_mode(&mut w, &Mode::Lsc(PointEstimate::Mean));
    encode_query(&mut w, &query);
    w.into_bytes()
}

proptest! {
    #[test]
    fn pure_noise_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        decode_everything(&bytes);
    }

    #[test]
    fn plausible_length_prefixes_never_panic(
        claimed in 0u32..=(1 << 21),
        bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        // A frame that leads with a length/count field chosen adversarially
        // (often far larger than the payload that follows).
        let mut framed = claimed.to_le_bytes().to_vec();
        framed.extend_from_slice(&(claimed as u64).to_le_bytes());
        framed.extend_from_slice(&bytes);
        decode_everything(&framed);
    }

    #[test]
    fn single_byte_mutations_of_valid_frames_never_panic(
        offset in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut payload = valid_payload();
        let idx = offset % payload.len();
        payload[idx] ^= mask;
        decode_everything(&payload);
        // The mode half, when it survives the flip, must still decode as
        // *some* mode the reader fully consumes — and the query decoder
        // must cope with the cursor landing anywhere afterwards.
        let mut r = Reader::new(&payload);
        if decode_mode(&mut r).is_ok() {
            let _ = decode_query(&mut r);
            let _ = r.finish();
        }
    }

    #[test]
    fn truncations_of_valid_frames_never_panic(cut_frac in 0.0f64..1.0) {
        let payload = valid_payload();
        let cut = ((payload.len() as f64) * cut_frac) as usize;
        decode_everything(&payload[..cut.min(payload.len())]);
    }
}
