//! `STATS` over the wire: the JSON snapshot a client fetches must be
//! byte-identical to the daemon's in-process `metrics_json` document at
//! a quiescent moment, the Prometheus exposition must parse line by
//! line, the daemon's request traces must bracket the serving layer's
//! spans with decode and flush, and the drain report's flattened
//! counters must carry the telemetry snapshot under its namespace.

use lec_core::{Mode, Optimizer, SearchConfig};
use lec_service::{ConcurrentPlanServer, DEFAULT_CACHE_CAPACITY};
use lec_serviced::transport::PipeListener;
use lec_serviced::{Client, Daemon, DaemonConfig, StatsFormat};
use lec_telemetry::{parse_prometheus, Outcome, Stage, Telemetry};
use std::sync::Arc;

#[test]
fn stats_cross_the_wire_and_agree_with_in_process_snapshots() {
    let (cat, q) = lec_core::fixtures::three_chain();
    let memory = lec_prob::presets::spread_family(400.0, 0.6, 4).unwrap();
    let tel = Arc::new(Telemetry::on());
    let server = ConcurrentPlanServer::new(&cat, memory).with_telemetry(Arc::clone(&tel));
    let daemon = Daemon::new(&server, DaemonConfig::default());
    let listener = PipeListener::new();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));
        let mut client = Client::new(Box::new(listener.connect()), 7);
        // One cold request, then a warm hit of the same query — both
        // traced by the daemon.
        client.optimize(1, &Mode::AlgorithmC, &q).expect("cold");
        client.optimize(2, &Mode::AlgorithmC, &q).expect("warm");

        // Wire JSON == in-process JSON, byte for byte: the STATS handler
        // serializes the same sorted-key document `metrics_json` builds,
        // and nothing moves between the two snapshots.
        let wire_json = client.stats(StatsFormat::Json).expect("stats json");
        let local_json = serde_json::to_string(&daemon.metrics_json()).unwrap();
        assert_eq!(
            wire_json, local_json,
            "wire and in-process snapshots differ"
        );
        assert!(wire_json.contains("\"telemetry\""));

        // The calibration surface crosses the wire with pinned sorted
        // keys.  The daemon only optimizes — nothing executed — so the
        // per-class error histograms and the cumulative I/O totals are
        // exactly zero, and both sections can be matched as literal
        // substrings of the payload.
        let empty_hist = "{\"count\": 0, \"mean_ns\": 0, \"p50_ns\": 0, \"p90_ns\": 0, \
                          \"p999_ns\": 0, \"p99_ns\": 0, \"sum_ns\": 0}";
        let pinned_calibration = format!(
            "\"calibration\": {{\"block_nl\": {empty_hist}, \"grace_hash\": {empty_hist}, \
             \"index_access\": {empty_hist}, \"page_nl\": {empty_hist}, \
             \"seq_access\": {empty_hist}, \"sort\": {empty_hist}, \
             \"sort_merge\": {empty_hist}}}"
        );
        assert!(
            wire_json.contains(&pinned_calibration),
            "wire snapshot lost the pinned calibration section\n  want: \
             {pinned_calibration}\n  got:  {wire_json}"
        );
        assert!(
            wire_json.contains("\"io\": {\"reads\": 0, \"writes\": 0}"),
            "wire snapshot lost the pinned io totals: {wire_json}"
        );

        // Both requests recorded under their outcome classes and retained
        // in the trace ring, bracketed by the daemon's decode/flush spans
        // around the serving layer's probe/search spans.
        assert_eq!(tel.outcome_snapshot(Outcome::Fresh).count(), 1);
        assert_eq!(tel.outcome_snapshot(Outcome::Served).count(), 1);
        assert_eq!(tel.ring().occupancy(), 2);
        for req_id in [1u64, 2] {
            let rec = tel.ring().find(req_id).expect("request traced");
            assert!(rec.spans.iter().any(|s| s.stage == Stage::Decode));
            assert!(rec.spans.iter().any(|s| s.stage == Stage::CacheProbe));
            assert!(rec.spans.iter().any(|s| s.stage == Stage::Flush));
            let span_sum: u64 = rec.spans.iter().map(|s| s.dur_ns).sum();
            assert!(
                span_sum <= rec.total_ns,
                "request {req_id}: stage spans ({span_sum} ns) exceed wall time ({} ns)",
                rec.total_ns
            );
        }
        let cold = tel.ring().find(1).expect("cold trace");
        assert!(
            cold.spans.iter().any(|s| s.stage == Stage::Search),
            "the cold request ran a traced search"
        );

        // Prometheus exposition parses and exposes both layers.
        let prom = client.stats(StatsFormat::Prometheus).expect("stats prom");
        let samples = parse_prometheus(&prom).expect("exposition parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "lec_daemon_requests_ok" && s.value == 2.0));
        assert!(samples.iter().any(|s| {
            s.name == "lec_requests_total"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "outcome" && v == "served")
                && s.value == 1.0
        }));

        client.drain().expect("drain");
        let report = runner.join().expect("daemon thread");
        assert!(report
            .counters
            .iter()
            .any(|(k, v)| k == "daemon.requests_ok" && *v == 2.0));
        assert!(report
            .counters
            .iter()
            .any(|(k, v)| k == "service.telemetry.latency.served.count" && *v == 1.0));
    });
}

/// The `pruning` section's wire bytes are pinned: keys sorted, and —
/// because every bound counter is schedule-independent — the values of a
/// single fresh pruned search are deterministic, so the whole object can
/// be matched as a literal substring of the STATS payload.
#[test]
fn pruning_counters_cross_the_wire_with_pinned_sorted_keys() {
    let (cat, q) = lec_core::fixtures::pruning_star(9);
    let memory = lec_prob::presets::spread_family(400.0, 0.5, 4).unwrap();
    let server = ConcurrentPlanServer::with_optimizer(
        Optimizer::new(&cat, memory).with_search_config(SearchConfig::default().with_pruning(true)),
        DEFAULT_CACHE_CAPACITY,
    );
    let daemon = Daemon::new(&server, DaemonConfig::default());
    let listener = PipeListener::new();

    // Collect inside the scope, assert only after it: a failed assert
    // before the drain would leave the daemon thread alive and turn a
    // test failure into a hang.
    let (resp, wire_json) = std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));
        let mut client = Client::new(Box::new(listener.connect()), 7);
        let resp = client
            .optimize(1, &Mode::AlgorithmC, &q)
            .expect("pruned search");
        let wire_json = client.stats(StatsFormat::Json).expect("stats json");
        client.drain().expect("drain");
        runner.join().expect("daemon thread");
        (resp, wire_json)
    });

    assert!(resp.stats.pruned_subsets > 0, "the star must prune");
    assert!(
        resp.stats.sharp_bound_evals + resp.stats.cheap_bound_skips > 0,
        "the tiered check must have run"
    );
    let pinned = format!(
        "\"pruning\": {{\"bound_evals\": {}, \"cheap_bound_skips\": {}, \
         \"pruned_subsets\": {}, \"sharp_bound_evals\": {}}}",
        resp.stats.bound_evals,
        resp.stats.cheap_bound_skips,
        resp.stats.pruned_subsets,
        resp.stats.sharp_bound_evals,
    );
    assert!(
        wire_json.contains(&pinned),
        "wire snapshot lost the pinned pruning section\n  want: {pinned}\n  got:  {wire_json}"
    );
}
