//! The chaos suite: deterministic fault injection against a live daemon.
//!
//! Every test scripts an exact [`FaultPlan`] — faults keyed by
//! `(connection id, frame/request index)` with connection ids in accept
//! order — and asserts the exact blast radius: only the affected
//! connection or cohort observes an error, everything else keeps
//! serving, and drain completes within its deadline.

use lec_core::Mode;
use lec_plan::Query;
use lec_service::ConcurrentPlanServer;
use lec_serviced::protocol::{self, op, ErrorCode, Writer, MAX_FRAME};
use lec_serviced::transport::{PipeListener, Stream};
use lec_serviced::{Client, ClientError, Daemon, DaemonConfig, FaultPlan, FrameFault, SearchFault};
use std::time::{Duration, Instant};

fn fixture() -> (lec_catalog::Catalog, Vec<Query>) {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(12);
    let mut wg = lec_plan::WorkloadGenerator::new(0x5EED);
    let queries: Vec<Query> = (0..6)
        .map(|i| {
            let ids = g.pick_tables(&catalog, 3 + (i % 3));
            wg.gen_query(&catalog, &ids, &lec_plan::QueryProfile::default())
        })
        .collect();
    (catalog, queries)
}

fn memory() -> lec_prob::Distribution {
    lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap()
}

/// Run `body` against a daemon configured with `config` and `faults`;
/// returns the drain report after `body` finishes and the daemon drains.
fn with_daemon<T>(
    catalog: &lec_catalog::Catalog,
    config: DaemonConfig,
    faults: FaultPlan,
    body: impl FnOnce(&PipeListener, &Daemon<'_, '_>) -> T,
) -> (T, lec_serviced::DrainReport) {
    let server = ConcurrentPlanServer::new(catalog, memory());
    let daemon = Daemon::new(&server, config).with_faults(faults);
    let listener = PipeListener::new();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));
        let out = body(&listener, &daemon);
        daemon.initiate_drain();
        let report = runner.join().expect("daemon thread");
        (out, report)
    })
}

// ---------------------------------------------------------------------
// Malformed frames poison exactly one connection
// ---------------------------------------------------------------------

#[test]
fn a_garbled_frame_poisons_only_its_connection() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    // Garble the opcode byte of connection 0's first frame.
    let faults = FaultPlan::new().inbound(
        0,
        0,
        FrameFault::Garble {
            offset: 0,
            mask: 0x7F,
        },
    );
    let ((), report) = with_daemon(
        &catalog,
        DaemonConfig::default(),
        faults,
        |listener, daemon| {
            // Connection ids follow accept order, which for the pipe
            // listener is connect order: dial sequentially.
            let mut poisoned = Client::new(Box::new(listener.connect()), 1);
            let mut healthy = Client::new(Box::new(listener.connect()), 2);

            match poisoned.optimize_once(0, &mode, &queries[0]) {
                Err(ClientError::Server(e)) => {
                    assert_eq!(e.code, ErrorCode::Malformed, "garbled frame is rejected");
                }
                other => panic!("expected a Malformed rejection, got {other:?}"),
            }
            // The poisoned connection is closed after the error frame…
            assert!(
                matches!(
                    poisoned.optimize_once(1, &mode, &queries[1]),
                    Err(ClientError::Io(_))
                ),
                "poisoned connection must be closed"
            );
            // …while the other connection never notices.
            let resp = healthy
                .optimize_once(0, &mode, &queries[0])
                .expect("healthy conn serves");
            assert!(resp.cost.is_finite());

            let m = daemon.metrics();
            assert_eq!(m.malformed_frames(), 1);
            assert_eq!(m.requests_ok(), 1);
        },
    );
    assert_eq!(report.forced_aborts, 0);
}

#[test]
fn a_dropped_frame_hangs_up_without_a_response() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let faults = FaultPlan::new().inbound(0, 0, FrameFault::Drop);
    let ((), _report) = with_daemon(
        &catalog,
        DaemonConfig::default(),
        faults,
        |listener, daemon| {
            let mut dropped = Client::new(Box::new(listener.connect()), 1);
            assert!(
                matches!(
                    dropped.optimize_once(0, &mode, &queries[0]),
                    Err(ClientError::Io(_))
                ),
                "dropped frame means EOF, never a hang"
            );
            // No request was dispatched, no error frame sent.
            assert_eq!(
                daemon.metrics().requests_ok() + daemon.metrics().requests_err(),
                0
            );
        },
    );
}

#[test]
fn an_oversized_frame_is_rejected_without_reading_it() {
    let (catalog, _queries) = fixture();
    let ((), _report) = with_daemon(
        &catalog,
        DaemonConfig::default(),
        FaultPlan::new(),
        |listener, daemon| {
            let mut raw = listener.connect();
            // A header announcing MAX_FRAME + 1 bytes: the daemon must
            // reject on the prefix alone.
            raw.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
            let mut client = Client::new(Box::new(raw), 1);
            match client.ping() {
                Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Malformed),
                Err(ClientError::Io(_)) => {} // error frame raced the close
                other => panic!("expected rejection, got {other:?}"),
            }
            assert_eq!(daemon.metrics().malformed_frames(), 1);
        },
    );
}

#[test]
fn truncated_optimize_bodies_are_rejected_cleanly() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    // Build a full OPTIMIZE frame, then deliver ever-shorter prefixes of
    // its body via the Truncate fault (which cuts the peeled frame).
    let mut w = Writer::new();
    w.u64(7);
    protocol::encode_mode(&mut w, &mode);
    protocol::encode_query(&mut w, &queries[0]);
    let body_len = w.into_bytes().len();
    let (catalog2, _) = (catalog, ());
    for cut in [0usize, 1, 9, body_len / 2] {
        let faults = FaultPlan::new().inbound(0, 0, FrameFault::Truncate(cut));
        let ((), _report) = with_daemon(
            &catalog2,
            DaemonConfig::default(),
            faults,
            |listener, daemon| {
                let mut client = Client::new(Box::new(listener.connect()), 1);
                match client.optimize_once(7, &mode, &queries[0]) {
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, ErrorCode::Malformed, "cut at {cut}")
                    }
                    other => panic!("cut at {cut}: expected Malformed, got {other:?}"),
                }
                assert_eq!(daemon.metrics().malformed_frames(), 1);
            },
        );
    }
}

// ---------------------------------------------------------------------
// Leader kills: the cohort fails, the connection survives
// ---------------------------------------------------------------------

#[test]
fn a_killed_leader_surfaces_worker_panicked_and_the_connection_survives() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let faults = FaultPlan::new().search(0, 0, SearchFault::KillLeader);
    let ((), _report) = with_daemon(
        &catalog,
        DaemonConfig::default(),
        faults,
        |listener, daemon| {
            let mut client = Client::new(Box::new(listener.connect()), 1);
            // optimize (with retry) must NOT mask the panic behind retries:
            // WorkerPanicked is not transient, so it surfaces immediately.
            match client.optimize(0, &mode, &queries[0]) {
                Err(ClientError::Server(e)) => {
                    assert_eq!(e.code, ErrorCode::WorkerPanicked);
                    assert!(!e.code.is_transient());
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // The connection is healthy — only the cohort died — and the
            // same request succeeds on the next, unfaulted attempt.
            let resp = client
                .optimize_once(1, &mode, &queries[0])
                .expect("retry succeeds");
            assert!(resp.cost.is_finite());

            let m = daemon.metrics();
            assert_eq!(m.requests_err(), 1);
            assert_eq!(m.requests_ok(), 1);
            assert_eq!(
                daemon.gate().depth(),
                0,
                "the killed leader released its slot"
            );
        },
    );
}

// ---------------------------------------------------------------------
// Overload: cold requests shed fast, warm hits keep serving
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_cold_requests_while_warm_hits_keep_serving() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let hold = Duration::from_millis(400);
    // Connection 0's second request holds the single cold slot.
    let faults = FaultPlan::new().search(0, 1, SearchFault::Delay(hold));
    let config = DaemonConfig {
        max_cold_backlog: 1,
        ..DaemonConfig::default()
    };
    let ((), _report) = with_daemon(&catalog, config, faults, |listener, _daemon| {
        let mut blocker = Client::new(Box::new(listener.connect()), 1);
        let mut prober = Client::new(Box::new(listener.connect()), 2);

        // Warm the cache with query 0 before saturating the gate.
        blocker
            .optimize_once(0, &mode, &queries[0])
            .expect("warmup");

        std::thread::scope(|scope| {
            let holder = scope.spawn(|| {
                // Occupies the only cold slot for `hold`.
                blocker
                    .optimize_once(1, &mode, &queries[1])
                    .expect("held search completes")
            });
            // Give the holder time to take the slot.
            std::thread::sleep(Duration::from_millis(60));

            // A cold request is shed *immediately* — not after `hold`.
            let t0 = Instant::now();
            match prober.optimize_once(0, &mode, &queries[2]) {
                Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            assert!(
                t0.elapsed() < hold / 2,
                "shedding must not wait out the backlog: took {:?}",
                t0.elapsed()
            );

            // Warm hits bypass admission: query 0 still serves during
            // the overload.
            let resp = prober
                .optimize_once(1, &mode, &queries[0])
                .expect("warm hit");
            assert!(resp.cost.is_finite());

            let held = holder.join().expect("holder thread");
            assert!(held.cost.is_finite());
        });
    });
}

#[test]
fn the_client_retry_rides_out_a_transient_overload() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let hold = Duration::from_millis(120);
    let faults = FaultPlan::new().search(0, 0, SearchFault::Delay(hold));
    let config = DaemonConfig {
        max_cold_backlog: 1,
        ..DaemonConfig::default()
    };
    let ((), _report) = with_daemon(&catalog, config, faults, |listener, daemon| {
        let mut blocker = Client::new(Box::new(listener.connect()), 1);
        // A generous retry budget: backoff outlasts the 120ms hold.
        let mut retrier = Client::with_policy(
            Box::new(listener.connect()),
            lec_serviced::RetryPolicy {
                max_retries: 30,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(40),
            },
            2,
        );
        std::thread::scope(|scope| {
            let holder = scope.spawn(|| blocker.optimize_once(0, &mode, &queries[1]));
            std::thread::sleep(Duration::from_millis(30));
            // Shed at first, then admitted once the slot frees: the
            // retry loop turns a transient refusal into an answer.
            let resp = retrier
                .optimize(0, &mode, &queries[2])
                .expect("retry wins through");
            assert!(resp.cost.is_finite());
            holder.join().expect("holder").expect("held search");
        });
        assert!(
            daemon.metrics().shed_requests() >= 1,
            "the overload actually happened"
        );
    });
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

#[test]
fn a_request_deadline_expires_instead_of_hanging() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let faults = FaultPlan::new().search(0, 0, SearchFault::Delay(Duration::from_millis(200)));
    let config = DaemonConfig {
        request_deadline: Some(Duration::from_millis(40)),
        ..DaemonConfig::default()
    };
    let ((), _report) = with_daemon(&catalog, config, faults, |listener, daemon| {
        let mut client = Client::new(Box::new(listener.connect()), 1);
        match client.optimize_once(0, &mode, &queries[0]) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::DeadlineExceeded);
                assert!(e.code.is_transient(), "deadlines are retryable");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(daemon.metrics().deadline_expirations(), 1);
        // The leader's search fed the cache anyway, so the retry is warm
        // and beats the same deadline easily.
        let resp = client
            .optimize_once(1, &mode, &queries[0])
            .expect("warm retry");
        assert!(resp.cost.is_finite());
    });
}

// ---------------------------------------------------------------------
// Slow clients
// ---------------------------------------------------------------------

#[test]
fn a_slow_client_is_disconnected_not_waited_on() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    // 64-byte pipes: one response overfills the buffer if unread.
    let listener = PipeListener::with_capacity(64);
    let server = ConcurrentPlanServer::new(&catalog, memory());
    let config = DaemonConfig {
        write_timeout: Some(Duration::from_millis(50)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::new(&server, config);
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));

        // The slow client writes a request and then never reads.
        let mut slow = listener.connect();
        let mut w = Writer::new();
        w.u64(0);
        protocol::encode_mode(&mut w, &mode);
        protocol::encode_query(&mut w, &queries[0]);
        // The request itself exceeds 64 bytes, so write it in chunks the
        // daemon drains as it parses.
        let frame = protocol::frame(op::OPTIMIZE, &w.into_bytes());
        for chunk in frame.chunks(48) {
            slow.write_all(chunk).expect("request trickles in");
        }

        // The daemon must give up on the write within the timeout and
        // close the connection rather than wedge the handler.
        let t0 = Instant::now();
        while daemon.metrics().connections_active() > 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "slow client still wedging the daemon after 5s"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        daemon.initiate_drain();
        let report = runner.join().expect("daemon thread");
        assert_eq!(report.forced_aborts, 0, "the write timeout did the job");
    });
}

// ---------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------

#[test]
fn drain_finishes_inflight_work_and_rejects_late_arrivals() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let faults = FaultPlan::new().search(0, 0, SearchFault::Delay(Duration::from_millis(150)));
    let config = DaemonConfig {
        drain_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    };
    let ((), report) = with_daemon(&catalog, config, faults, |listener, daemon| {
        let mut inflight = Client::new(Box::new(listener.connect()), 1);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| inflight.optimize_once(0, &mode, &queries[0]));
            std::thread::sleep(Duration::from_millis(40));

            // Drain arrives while the search is mid-flight.
            let mut ctl = Client::new(Box::new(listener.connect()), 2);
            ctl.drain().expect("drain acknowledged");

            // A connection dialed after the drain ack is rejected
            // (closed), never served, never hung.
            let mut late = Client::new(Box::new(listener.connect()), 3);
            assert!(
                matches!(late.ping(), Err(ClientError::Io(_))),
                "late connection must be closed"
            );

            // The in-flight cohort still completes and flushes.
            let resp = worker.join().expect("thread").expect("in-flight completes");
            assert!(resp.cost.is_finite());
        });
        assert!(daemon.metrics().connections_rejected() >= 1);
    });
    assert_eq!(report.forced_aborts, 0, "drain waited for the cohort");
    assert!(
        report.drain_duration < Duration::from_secs(5),
        "drain completed within its deadline: {:?}",
        report.drain_duration
    );
    let m = &report.metrics;
    assert_eq!(m["daemon"]["requests_ok"].as_f64(), Some(1.0));
    assert!(m["daemon"]["drain_duration_ms"].as_f64().is_some());
}

#[test]
fn the_drain_watchdog_force_closes_stragglers_at_the_deadline() {
    let (catalog, queries) = fixture();
    let mode = Mode::AlgorithmC;
    let hold = Duration::from_millis(400);
    let faults = FaultPlan::new().search(0, 0, SearchFault::Delay(hold));
    let config = DaemonConfig {
        drain_deadline: Duration::from_millis(50),
        ..DaemonConfig::default()
    };
    let ((), report) = with_daemon(&catalog, config, faults, |listener, daemon| {
        let mut straggler = Client::new(Box::new(listener.connect()), 1);
        std::thread::scope(|scope| {
            let worker = scope.spawn(move || straggler.optimize_once(0, &mode, &queries[0]));
            std::thread::sleep(Duration::from_millis(40));
            daemon.initiate_drain();
            // The force-closed client observes an I/O failure, not a hang.
            assert!(matches!(
                worker.join().expect("thread"),
                Err(ClientError::Io(_))
            ));
        });
    });
    assert!(report.forced_aborts >= 1, "the watchdog had to act");
    // The handler itself unblocks as soon as its held search ends.
    assert!(
        report.drain_duration < hold + Duration::from_secs(2),
        "drain resolved promptly after the hold: {:?}",
        report.drain_duration
    );
}
