//! Cross-wire byte-identity: responses served through the daemon —
//! encoded, framed, pushed through a socket-faithful pipe, decoded —
//! must be byte-identical (plan shape, cost bits, table numbering, mode)
//! to a fresh `Optimizer::optimize` of the same request, over a skewed
//! multi-client workload with batching, warm hits, and coalescing all in
//! play.  Plus the metrics-closure assertions: every accepted connection
//! is closed, every request accounted ok or err, the cold gate empty.

use lec_core::{Mode, Optimizer};
use lec_plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_service::ConcurrentPlanServer;
use lec_serviced::transport::PipeListener;
use lec_serviced::{Client, Daemon, DaemonConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POOL_SIZE: usize = 12;
const STREAM_LEN: usize = 180;
const CLIENTS: usize = 3;

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The skewed stream over a pool of base shapes: shape `i` drawn with
/// weight `1/(i+1)`, every occurrence randomly table-renamed (the same
/// construction as the in-process serving guards).
fn build_stream(catalog: &lec_catalog::Catalog) -> Vec<Query> {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let mut wg = WorkloadGenerator::new(0x5EED);
    let pool: Vec<Query> = (0..POOL_SIZE)
        .map(|i| {
            let n = 4 + (i % 4); // 4..=7 tables
            let ids = g.pick_tables(catalog, n);
            let topology = [Topology::Chain, Topology::Star, Topology::Random][i % 3];
            wg.gen_query(
                catalog,
                &ids,
                &QueryProfile {
                    topology,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..STREAM_LEN)
        .map(|_| {
            let mut pick = rng.gen::<f64>() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let q = &pool[idx];
            q.relabel_tables(&random_perm(&mut rng, q.n_tables()))
        })
        .collect()
}

#[test]
fn responses_cross_the_wire_byte_identically() {
    let mut g = lec_catalog::CatalogGenerator::new(31);
    let catalog = g.generate(18);
    let stream = build_stream(&catalog);
    let memory = lec_prob::presets::spread_family(500.0, 0.6, 4).unwrap();
    let mode = Mode::AlgorithmC;

    // Fresh per-request baseline: the byte-identity oracle.
    let fresh_opt = Optimizer::new(&catalog, memory.clone());
    let fresh: Vec<_> = stream
        .iter()
        .map(|q| fresh_opt.optimize(q, &mode).expect("fresh optimize"))
        .collect();

    let server = ConcurrentPlanServer::new(&catalog, memory);
    let daemon = Daemon::new(
        &server,
        DaemonConfig {
            max_cold_backlog: 8, // ample: this test must never shed
            ..DaemonConfig::default()
        },
    );
    let listener = PipeListener::new();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&listener));

        // N clients replay overlapping staggered views of the stream, so
        // warm hits, coalesced cohorts, and cold leads all cross the
        // wire.  Client 0 pipelines in batches (one write per batch);
        // the others round-trip one request at a time.
        let mut client_threads = Vec::new();
        for client_id in 0..CLIENTS {
            let stream = &stream;
            let fresh = &fresh;
            let listener = &listener;
            let mode = mode.clone();
            client_threads.push(scope.spawn(move || {
                let mut client =
                    Client::new(Box::new(listener.connect()), 0xC0FFEE + client_id as u64);
                let indices: Vec<usize> = (0..stream.len())
                    .map(|k| (k + client_id * 7) % stream.len())
                    .collect();
                if client_id == 0 {
                    for batch in indices.chunks(16) {
                        let requests: Vec<_> = batch
                            .iter()
                            .map(|&i| (i as u64, mode.clone(), stream[i].clone()))
                            .collect();
                        let responses = client.optimize_batch(&requests).expect("batch io");
                        for (&i, resp) in batch.iter().zip(responses) {
                            let resp = resp.expect("batched optimize succeeds");
                            assert_eq!(
                                resp.plan, fresh[i].plan,
                                "request {i}: wire plan differs from fresh optimization"
                            );
                            assert_eq!(
                                resp.cost.to_bits(),
                                fresh[i].cost.to_bits(),
                                "request {i}: wire cost bits differ"
                            );
                            assert_eq!(resp.mode, fresh[i].mode, "request {i}: mode name");
                        }
                    }
                } else {
                    for &i in &indices {
                        let resp = client
                            .optimize(i as u64, &mode, &stream[i])
                            .expect("optimize succeeds");
                        assert_eq!(
                            resp.plan, fresh[i].plan,
                            "request {i}: wire plan differs from fresh optimization"
                        );
                        assert_eq!(
                            resp.cost.to_bits(),
                            fresh[i].cost.to_bits(),
                            "request {i}: wire cost bits differ"
                        );
                        assert_eq!(resp.mode, fresh[i].mode, "request {i}: mode name");
                    }
                }
            }));
        }
        for t in client_threads {
            t.join().expect("client thread");
        }

        // A final control client checks liveness and metrics, then drains.
        let mut control = Client::new(Box::new(listener.connect()), 0xD1A1);
        control.ping().expect("ping");
        let metrics = control.metrics().expect("metrics");
        assert!(
            metrics.contains("\"daemon\""),
            "metrics carry a daemon section"
        );
        assert!(
            metrics.contains("\"service\""),
            "metrics embed the serving layer"
        );
        control.drain().expect("drain");
        let report = runner.join().expect("daemon thread");

        // Closure: all connections closed, no sheds/deadlines/aborts, and
        // every optimize accounted ok.
        let m = daemon.metrics();
        assert_eq!(m.connections_accepted(), CLIENTS as u64 + 1);
        assert_eq!(m.connections_active(), 0, "every connection closed");
        assert_eq!(m.requests_ok(), (CLIENTS * STREAM_LEN) as u64);
        assert_eq!(m.requests_err(), 0);
        assert_eq!(m.shed_requests(), 0, "backlog of 8 never sheds here");
        assert_eq!(m.deadline_expirations(), 0);
        assert_eq!(m.malformed_frames(), 0);
        assert_eq!(report.forced_aborts, 0, "graceful drain needs no hammer");
        assert_eq!(daemon.gate().depth(), 0, "cold gate drains to empty");
        assert!(
            daemon.gate().high_water() >= 1,
            "cold searches did pass the gate"
        );
    });
}
