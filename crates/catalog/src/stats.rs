//! Per-table and per-column statistics.

use lec_prob::Distribution;

/// What kind of index (if any) exists on a column.
///
/// A clustered index means the table is stored in index order, so an index
/// scan both restricts pages *and* yields sorted output (an "interesting
/// order" in System R terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// No index on this column.
    None,
    /// Index whose leaf order matches the heap order.
    Clustered,
    /// Secondary index; yields row ids in index order, heap pages random.
    Unclustered,
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Human-readable name, e.g. `"c0"`.
    pub name: String,
    /// Estimated number of distinct values.
    pub distinct: u64,
    /// Index available on this column, if any.
    pub index: IndexKind,
}

impl ColumnStats {
    /// Column with no index.
    pub fn plain(name: impl Into<String>, distinct: u64) -> Self {
        ColumnStats {
            name: name.into(),
            distinct,
            index: IndexKind::None,
        }
    }

    /// Column with an index of the given kind.
    pub fn indexed(name: impl Into<String>, distinct: u64, index: IndexKind) -> Self {
        ColumnStats {
            name: name.into(),
            distinct,
            index,
        }
    }
}

/// Statistics for one stored table.
///
/// `pages` is the System R unit of cost (all of the paper's formulas are in
/// page I/Os).  `page_dist` optionally models *uncertainty about the size
/// itself* — the paper's category-1 parameters are "estimates" too — and
/// defaults to a point mass at `pages`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of heap pages.
    pub pages: u64,
    /// Number of rows.
    pub rows: u64,
    /// Column statistics (at least one column).
    pub columns: Vec<ColumnStats>,
    /// Distribution of the page count when it is uncertain; `None` means
    /// exactly `pages`.
    pub page_dist: Option<Distribution>,
}

impl TableStats {
    /// Build statistics with exact page count.
    pub fn new(pages: u64, rows: u64, columns: Vec<ColumnStats>) -> Self {
        assert!(pages > 0, "tables must occupy at least one page");
        assert!(!columns.is_empty(), "tables must have at least one column");
        TableStats {
            pages,
            rows,
            columns,
            page_dist: None,
        }
    }

    /// Rows per page (≥ 1 by construction for non-empty tables).
    pub fn rows_per_page(&self) -> f64 {
        self.rows as f64 / self.pages as f64
    }

    /// The page-count distribution: the declared `page_dist` or a point
    /// mass at `pages`.
    pub fn page_distribution(&self) -> Distribution {
        self.page_dist
            .clone()
            .unwrap_or_else(|| Distribution::point(self.pages as f64))
    }

    /// Index kind on column `col`, or `IndexKind::None` if out of range.
    pub fn index_on(&self, col: usize) -> IndexKind {
        self.columns
            .get(col)
            .map(|c| c.index)
            .unwrap_or(IndexKind::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TableStats {
        TableStats::new(
            1000,
            50_000,
            vec![
                ColumnStats::indexed("pk", 50_000, IndexKind::Clustered),
                ColumnStats::plain("val", 100),
            ],
        )
    }

    #[test]
    fn rows_per_page() {
        assert_eq!(stats().rows_per_page(), 50.0);
    }

    #[test]
    fn default_page_distribution_is_a_point() {
        let d = stats().page_distribution();
        assert!(d.is_point());
        assert_eq!(d.mean(), 1000.0);
    }

    #[test]
    fn declared_page_distribution_is_returned() {
        let mut s = stats();
        s.page_dist = Some(Distribution::bimodal(800.0, 1200.0, 0.5).unwrap());
        assert_eq!(s.page_distribution().len(), 2);
    }

    #[test]
    fn index_lookup() {
        let s = stats();
        assert_eq!(s.index_on(0), IndexKind::Clustered);
        assert_eq!(s.index_on(1), IndexKind::None);
        assert_eq!(s.index_on(99), IndexKind::None);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_rejected() {
        TableStats::new(0, 0, vec![ColumnStats::plain("c", 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        TableStats::new(1, 1, vec![]);
    }
}
