//! The catalog: a registry of stored tables and their statistics.

use crate::stats::TableStats;
use std::fmt;

/// Opaque identifier of a stored table within one [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A stored table: a name plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier, assigned by the catalog on insertion.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Optimizer-visible statistics.
    pub stats: TableStats,
}

/// An in-memory catalog, the source of all data-property parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; returns its id.
    pub fn add_table(&mut self, name: impl Into<String>, stats: TableStats) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            name: name.into(),
            stats,
        });
        id
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Look up a table by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this catalog; ids are only ever
    /// produced by [`Catalog::add_table`], so this indicates a logic error.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Look up a table by id, returning `None` for foreign ids.
    pub fn try_table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id.0 as usize)
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Iterate over all tables in id order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// All table ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = TableId> + '_ {
        self.tables.iter().map(|t| t.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ColumnStats;

    fn sample_stats(pages: u64) -> TableStats {
        TableStats::new(pages, pages * 10, vec![ColumnStats::plain("c0", 10)])
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat.add_table("A", sample_stats(100));
        let b = cat.add_table("B", sample_stats(200));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table(a).name, "A");
        assert_eq!(cat.table(b).stats.pages, 200);
        assert_eq!(cat.table_by_name("B").unwrap().id, b);
        assert!(cat.table_by_name("missing").is_none());
        assert!(cat.try_table(TableId(99)).is_none());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut cat = Catalog::new();
        for i in 0..5 {
            let id = cat.add_table(format!("t{i}"), sample_stats(10));
            assert_eq!(id, TableId(i));
        }
        let ids: Vec<_> = cat.ids().collect();
        assert_eq!(ids, (0..5).map(TableId).collect::<Vec<_>>());
    }

    #[test]
    fn display_of_table_id() {
        assert_eq!(TableId(3).to_string(), "T3");
    }
}
