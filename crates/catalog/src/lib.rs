//! # lec-catalog — table statistics and synthetic catalogs
//!
//! The System R-style optimizer of the paper consumes three families of
//! parameters (§1): data properties (this crate), query properties
//! (selectivities, attached to predicates in `lec-plan`), and run-time
//! environment properties (`lec-prob`).  This crate provides the first:
//! tables with page/row counts, column statistics, index metadata, and a
//! generator for synthetic catalogs used by the workload experiments.

pub mod catalog;
pub mod stats;
pub mod synthetic;

pub use catalog::{Catalog, Table, TableId};
pub use stats::{ColumnStats, IndexKind, TableStats};
pub use synthetic::{CatalogGenerator, CatalogProfile};
