//! Synthetic catalog generation.
//!
//! The paper's promised prototype would be evaluated "against realistic
//! queries and execution environments" (§4).  Real catalogs are not
//! available, so we generate them: page counts log-uniform over a wide
//! range (join cost cliffs appear at √pages and ∛pages, so a wide range
//! guarantees distributions straddle cliffs), a plausible rows-per-page
//! factor, and a sprinkle of indexes.

use crate::catalog::{Catalog, TableId};
use crate::stats::{ColumnStats, IndexKind, TableStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable shape of generated catalogs.
#[derive(Debug, Clone)]
pub struct CatalogProfile {
    /// Minimum page count of a generated table (inclusive).
    pub min_pages: u64,
    /// Maximum page count of a generated table (inclusive).
    pub max_pages: u64,
    /// Rows per page range.
    pub rows_per_page: (u64, u64),
    /// Columns per table range.
    pub columns: (usize, usize),
    /// Probability that a column carries a clustered index.
    pub p_clustered: f64,
    /// Probability that a column carries an unclustered index.
    pub p_unclustered: f64,
}

impl Default for CatalogProfile {
    fn default() -> Self {
        CatalogProfile {
            min_pages: 100,
            max_pages: 2_000_000,
            rows_per_page: (20, 200),
            columns: (2, 4),
            p_clustered: 0.2,
            p_unclustered: 0.2,
        }
    }
}

/// Deterministic (seeded) catalog generator.
#[derive(Debug)]
pub struct CatalogGenerator {
    rng: StdRng,
    profile: CatalogProfile,
}

impl CatalogGenerator {
    /// Generator with the default profile.
    pub fn new(seed: u64) -> Self {
        CatalogGenerator {
            rng: StdRng::seed_from_u64(seed),
            profile: CatalogProfile::default(),
        }
    }

    /// Generator with a custom profile.
    pub fn with_profile(seed: u64, profile: CatalogProfile) -> Self {
        assert!(profile.min_pages >= 1 && profile.min_pages <= profile.max_pages);
        assert!(profile.columns.0 >= 1 && profile.columns.0 <= profile.columns.1);
        CatalogGenerator {
            rng: StdRng::seed_from_u64(seed),
            profile,
        }
    }

    /// Generate a catalog of `n` tables named `R0..R{n-1}`.
    pub fn generate(&mut self, n: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let stats = self.gen_table_stats();
            cat.add_table(format!("R{i}"), stats);
        }
        cat
    }

    /// Generate a single table's statistics.
    pub fn gen_table_stats(&mut self) -> TableStats {
        let pages = self.log_uniform_pages();
        let rpp = self
            .rng
            .gen_range(self.profile.rows_per_page.0..=self.profile.rows_per_page.1);
        let rows = pages * rpp;
        let ncols = self
            .rng
            .gen_range(self.profile.columns.0..=self.profile.columns.1);
        let columns = (0..ncols)
            .map(|c| {
                let distinct = self.rng.gen_range(1..=rows.max(1));
                let roll: f64 = self.rng.gen();
                let index = if c == 0 && roll < self.profile.p_clustered {
                    // At most one clustered index per table: column 0.
                    IndexKind::Clustered
                } else if roll < self.profile.p_clustered + self.profile.p_unclustered {
                    IndexKind::Unclustered
                } else {
                    IndexKind::None
                };
                ColumnStats::indexed(format!("c{c}"), distinct, index)
            })
            .collect();
        TableStats::new(pages, rows, columns)
    }

    fn log_uniform_pages(&mut self) -> u64 {
        let lo = (self.profile.min_pages as f64).ln();
        let hi = (self.profile.max_pages as f64).ln();
        let v: f64 = self.rng.gen_range(lo..=hi);
        (v.exp().round() as u64).clamp(self.profile.min_pages, self.profile.max_pages)
    }

    /// Pick `k` distinct table ids from a catalog (for workload generation).
    pub fn pick_tables(&mut self, catalog: &Catalog, k: usize) -> Vec<TableId> {
        assert!(k <= catalog.len(), "cannot pick {k} from {}", catalog.len());
        let mut ids: Vec<TableId> = catalog.ids().collect();
        // Partial Fisher-Yates.
        for i in 0..k {
            let j = self.rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        ids.truncate(k);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CatalogGenerator::new(42).generate(8);
        let b = CatalogGenerator::new(42).generate(8);
        assert_eq!(a, b);
        let c = CatalogGenerator::new(43).generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_tables_respect_profile_bounds() {
        let profile = CatalogProfile {
            min_pages: 50,
            max_pages: 5_000,
            rows_per_page: (10, 20),
            columns: (2, 3),
            ..CatalogProfile::default()
        };
        let cat = CatalogGenerator::with_profile(7, profile.clone()).generate(50);
        for t in cat.tables() {
            assert!(t.stats.pages >= profile.min_pages && t.stats.pages <= profile.max_pages);
            let rpp = t.stats.rows / t.stats.pages;
            assert!((10..=20).contains(&rpp), "rows per page {rpp}");
            assert!((2..=3).contains(&t.stats.columns.len()));
        }
    }

    #[test]
    fn page_counts_span_orders_of_magnitude() {
        let cat = CatalogGenerator::new(1).generate(200);
        let pages: Vec<u64> = cat.tables().map(|t| t.stats.pages).collect();
        let min = *pages.iter().min().unwrap();
        let max = *pages.iter().max().unwrap();
        assert!(
            max as f64 / min as f64 > 100.0,
            "log-uniform sizes should span >2 orders of magnitude ({min}..{max})"
        );
    }

    #[test]
    fn pick_tables_returns_distinct_ids() {
        let mut g = CatalogGenerator::new(5);
        let cat = g.generate(10);
        let picked = g.pick_tables(&cat, 6);
        assert_eq!(picked.len(), 6);
        let mut dedup = picked.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn clustered_index_only_on_first_column() {
        let profile = CatalogProfile {
            p_clustered: 1.0,
            p_unclustered: 0.0,
            ..Default::default()
        };
        let cat = CatalogGenerator::with_profile(3, profile).generate(20);
        for t in cat.tables() {
            for (i, c) in t.stats.columns.iter().enumerate() {
                if c.index == IndexKind::Clustered {
                    assert_eq!(i, 0, "clustered index must be on column 0");
                }
            }
        }
    }
}
