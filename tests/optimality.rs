//! Property-based verification of the paper's optimality theorems against
//! exhaustive enumeration, on randomly generated catalogs and queries.

use lec_qopt::catalog::{CatalogGenerator, CatalogProfile};
use lec_qopt::core::{
    exhaustive_best, optimize_lec_dynamic, optimize_lec_static, optimize_lsc, Objective,
};
use lec_qopt::cost::CostModel;
use lec_qopt::plan::{Query, QueryProfile, Topology, WorkloadGenerator};
use lec_qopt::prob::{presets, Distribution, MarkovChain};
use proptest::prelude::*;

fn random_workload(seed: u64, n: usize, topology: Topology) -> (lec_qopt::catalog::Catalog, Query) {
    let profile = CatalogProfile {
        min_pages: 50,
        max_pages: 500_000,
        ..Default::default()
    };
    let mut g = CatalogGenerator::with_profile(seed, profile);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed ^ 0xABCD);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology,
            ..Default::default()
        },
    );
    (cat, q)
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Chain),
        Just(Topology::Star),
        Just(Topology::Clique),
        Just(Topology::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2.1: the DP at a point equals exhaustive search at a point.
    #[test]
    fn lsc_dp_is_optimal(
        seed in 0u64..5000,
        n in 3usize..5,
        topology in arb_topology(),
        mem in 10.0f64..5000.0,
    ) {
        let (cat, q) = random_workload(seed, n, topology);
        let model = CostModel::new(&cat, &q);
        let dp = optimize_lsc(&model, mem).unwrap();
        let ex = exhaustive_best(&model, &Objective::Point(mem)).unwrap();
        prop_assert!(
            (dp.cost - ex.cost).abs() / ex.cost.max(1.0) < 1e-9,
            "dp {} vs exhaustive {}", dp.cost, ex.cost
        );
    }

    /// Theorem 3.3: Algorithm C computes the LEC left-deep plan.
    #[test]
    fn algorithm_c_is_optimal(
        seed in 0u64..5000,
        n in 3usize..5,
        topology in arb_topology(),
        center in 50.0f64..3000.0,
        spread in 0.1f64..0.95,
        buckets in 2usize..7,
    ) {
        let (cat, q) = random_workload(seed, n, topology);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, spread, buckets).unwrap();
        let dp = optimize_lec_static(&model, &memory).unwrap();
        let ex = exhaustive_best(&model, &Objective::Expected(&memory)).unwrap();
        prop_assert!(
            (dp.cost - ex.cost).abs() / ex.cost.max(1.0) < 1e-9,
            "dp {} vs exhaustive {}", dp.cost, ex.cost
        );
    }

    /// Theorem 3.4: Algorithm C stays optimal under Markov drift.
    #[test]
    fn dynamic_algorithm_c_is_optimal(
        seed in 0u64..5000,
        n in 3usize..5,
        p_down in 0.05f64..0.45,
        p_up in 0.05f64..0.45,
    ) {
        let (cat, q) = random_workload(seed, n, Topology::Chain);
        let model = CostModel::new(&cat, &q);
        let states = vec![60.0, 240.0, 960.0, 3840.0];
        let chain = MarkovChain::birth_death(states, p_down, p_up).unwrap();
        let initial = Distribution::bimodal(240.0, 3840.0, 0.5).unwrap();
        let dp = optimize_lec_dynamic(&model, &initial, &chain).unwrap();
        let ex = exhaustive_best(
            &model,
            &Objective::Dynamic { initial: &initial, chain: &chain },
        )
        .unwrap();
        prop_assert!(
            (dp.cost - ex.cost).abs() / ex.cost.max(1.0) < 1e-9,
            "dp {} vs exhaustive {}", dp.cost, ex.cost
        );
    }

    /// Definitional: the LEC plan's EC lower-bounds every plan the
    /// exhaustive enumerator can build.
    #[test]
    fn lec_cost_lower_bounds_sampled_plans(
        seed in 0u64..5000,
        n in 3usize..5,
        center in 100.0f64..2000.0,
    ) {
        let (cat, q) = random_workload(seed, n, Topology::Random);
        let model = CostModel::new(&cat, &q);
        let memory = presets::spread_family(center, 0.7, 5).unwrap();
        let lec = optimize_lec_static(&model, &memory).unwrap();
        // LSC plans at various points are a plan sample; none may beat LEC
        // in expectation.
        for m in [memory.min_value(), memory.mean(), memory.max_value()] {
            let p = optimize_lsc(&model, m).unwrap();
            let ec = lec_qopt::cost::expected_plan_cost_static(&model, &p.plan, &memory);
            prop_assert!(lec.cost <= ec + 1e-6);
        }
    }
}
