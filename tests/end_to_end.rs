//! End-to-end workspace tests: random workloads through every optimizer
//! mode, checking the paper's dominance chain and cross-crate consistency.

use lec_qopt::catalog::CatalogGenerator;
use lec_qopt::core::{AlgDConfig, Mode, Optimizer, PointEstimate};
use lec_qopt::cost::{expected_plan_cost_static, CostModel};
use lec_qopt::plan::{QueryProfile, Topology, WorkloadGenerator};
use lec_qopt::prob::presets;

fn workloads(
    seed: u64,
    n_tables: usize,
    topology: Topology,
) -> Vec<(lec_qopt::catalog::Catalog, lec_qopt::plan::Query)> {
    let mut out = Vec::new();
    for s in 0..6u64 {
        let mut g = CatalogGenerator::new(seed + s);
        let cat = g.generate(n_tables + 2);
        let ids = g.pick_tables(&cat, n_tables);
        let mut wg = WorkloadGenerator::new(seed + 100 + s);
        let profile = QueryProfile {
            topology,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        out.push((cat, q));
    }
    out
}

/// EC(C) ≤ EC(B) ≤ EC(A) ≤ EC(LSC plan): the paper's quality ordering, on
/// random workloads.
#[test]
fn dominance_chain_holds_on_random_workloads() {
    for topology in [Topology::Chain, Topology::Star, Topology::Random] {
        for (cat, q) in workloads(7, 5, topology) {
            let memory = presets::spread_family(500.0, 0.8, 6).unwrap();
            let opt = Optimizer::new(&cat, memory.clone());
            let model = CostModel::new(&cat, &q);

            let lsc = opt.optimize(&q, &Mode::Lsc(PointEstimate::Mean)).unwrap();
            let a = opt.optimize(&q, &Mode::AlgorithmA).unwrap();
            let b = opt.optimize(&q, &Mode::AlgorithmB { c: 3 }).unwrap();
            let c = opt.optimize(&q, &Mode::AlgorithmC).unwrap();

            let lsc_ec = expected_plan_cost_static(&model, &lsc.plan, &memory);
            assert!(a.cost <= lsc_ec + 1e-6, "{topology:?}: A > LSC");
            assert!(b.cost <= a.cost + 1e-6, "{topology:?}: B > A");
            assert!(c.cost <= b.cost + 1e-6, "{topology:?}: C > B");
        }
    }
}

/// Every mode's reported cost must replay exactly through the cost crate.
#[test]
fn reported_costs_replay_through_the_cost_model() {
    for (cat, q) in workloads(21, 4, Topology::Chain) {
        let memory = presets::spread_family(350.0, 0.6, 5).unwrap();
        let opt = Optimizer::new(&cat, memory.clone());
        let model = CostModel::new(&cat, &q);
        for mode in [
            Mode::Lsc(PointEstimate::Mean),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 2 },
            Mode::AlgorithmC,
        ] {
            let r = opt.optimize(&q, &mode).unwrap();
            let replay = match mode {
                Mode::Lsc(_) => lec_qopt::cost::plan_cost_at(&model, &r.plan, memory.mean()),
                _ => expected_plan_cost_static(&model, &r.plan, &memory),
            };
            assert!(
                (r.cost - replay).abs() / replay.max(1.0) < 1e-9,
                "{}: reported {} vs replay {replay}",
                r.mode,
                r.cost
            );
        }
    }
}

/// All plans are left-deep, cover every table, and honor required orders.
#[test]
fn plans_are_structurally_valid() {
    for (cat, q) in workloads(33, 5, Topology::Random) {
        let memory = presets::spread_family(400.0, 0.7, 4).unwrap();
        let opt = Optimizer::new(&cat, memory);
        let model = CostModel::new(&cat, &q);
        for mode in [
            Mode::Lsc(PointEstimate::Mode),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 2 },
            Mode::AlgorithmC,
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        ] {
            let r = opt.optimize(&q, &mode).unwrap();
            assert!(r.plan.is_left_deep(), "{}", r.mode);
            assert_eq!(r.plan.tables(), q.all_tables(), "{}", r.mode);
            if let Some(want) = q.required_order {
                let order = lec_qopt::cost::output_order(&model, &r.plan);
                assert!(
                    model.equivalences().satisfies(order, want),
                    "{}: required order violated",
                    r.mode
                );
            }
        }
    }
}

/// With a point memory distribution and point selectivities, every
/// algorithm must coincide with LSC (the paper's single-bucket remark).
#[test]
fn all_algorithms_collapse_at_a_point() {
    for (cat, q) in workloads(55, 4, Topology::Star) {
        let memory = lec_qopt::prob::Distribution::point(750.0);
        let opt = Optimizer::new(&cat, memory);
        let lsc = opt.optimize(&q, &Mode::Lsc(PointEstimate::Mean)).unwrap();
        for mode in [
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 3 },
            Mode::AlgorithmC,
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        ] {
            let r = opt.optimize(&q, &mode).unwrap();
            assert!(
                (r.cost - lsc.cost).abs() / lsc.cost < 1e-9,
                "{}: {} vs LSC {}",
                r.mode,
                r.cost,
                lsc.cost
            );
        }
    }
}

/// Uncertain selectivities: Algorithm D runs clean on workloads where
/// every join selectivity is a distribution.
#[test]
fn algorithm_d_on_uncertain_workloads() {
    for s in 0..4u64 {
        let mut g = CatalogGenerator::new(60 + s);
        let cat = g.generate(6);
        let ids = g.pick_tables(&cat, 4);
        let mut wg = WorkloadGenerator::new(600 + s);
        let profile = QueryProfile {
            topology: Topology::Chain,
            sel_buckets: 4,
            ..Default::default()
        };
        let q = wg.gen_query(&cat, &ids, &profile);
        assert!(q.has_uncertain_selectivities());
        let memory = presets::spread_family(450.0, 0.5, 4).unwrap();
        let opt = Optimizer::new(&cat, memory);
        let r = opt
            .optimize(
                &q,
                &Mode::AlgorithmD {
                    config: AlgDConfig::default(),
                },
            )
            .unwrap();
        assert!(r.cost.is_finite() && r.cost > 0.0);
        assert!(r.plan.is_left_deep());
    }
}
