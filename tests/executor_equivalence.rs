//! The optimizer meets the executor: every plan any algorithm chooses for
//! a query must compute the same result (System R's §2.2 observations,
//! verified end to end), and simulated costs must match the cost model.

use lec_qopt::catalog::{CatalogGenerator, CatalogProfile};
use lec_qopt::core::{AlgDConfig, Mode, Optimizer, PointEstimate};
use lec_qopt::cost::CostModel;
use lec_qopt::exec::{datagen, execute, monte_carlo, Environment};
use lec_qopt::plan::{QueryProfile, Topology, WorkloadGenerator};
use lec_qopt::prob::presets;

fn workload(
    seed: u64,
    n: usize,
    topology: Topology,
) -> (lec_qopt::catalog::Catalog, lec_qopt::plan::Query) {
    let profile = CatalogProfile {
        min_pages: 100,
        max_pages: 800_000,
        ..Default::default()
    };
    let mut g = CatalogGenerator::with_profile(seed, profile);
    let cat = g.generate(n + 1);
    let ids = g.pick_tables(&cat, n);
    let mut wg = WorkloadGenerator::new(seed + 1);
    let q = wg.gen_query(
        &cat,
        &ids,
        &QueryProfile {
            topology,
            ..Default::default()
        },
    );
    (cat, q)
}

#[test]
fn all_chosen_plans_return_identical_results() {
    for (seed, topology) in [
        (1u64, Topology::Chain),
        (2, Topology::Star),
        (3, Topology::Clique),
        (4, Topology::Random),
    ] {
        let (cat, q) = workload(seed, 4, topology);
        let dataset = datagen::generate(&cat, &q, 40, seed * 7 + 1);
        let memory = presets::spread_family(400.0, 0.8, 5).unwrap();
        let opt = Optimizer::new(&cat, memory);
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for mode in [
            Mode::Lsc(PointEstimate::Mean),
            Mode::Lsc(PointEstimate::Mode),
            Mode::LscAt(60.0),
            Mode::AlgorithmA,
            Mode::AlgorithmB { c: 3 },
            Mode::AlgorithmC,
            Mode::AlgorithmD {
                config: AlgDConfig::default(),
            },
        ] {
            let r = opt.optimize(&q, &mode).unwrap();
            let rows = execute(&r.plan, &q, &dataset).canonical_rows();
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(
                    &rows, want,
                    "{topology:?} seed {seed}: {} returned different rows",
                    r.mode
                ),
            }
        }
    }
}

#[test]
fn required_order_is_physically_delivered() {
    for seed in [11u64, 12, 13] {
        let (cat, mut q) = workload(seed, 3, Topology::Chain);
        // Force a required order on the last join's column.
        q.required_order = Some(q.joins.last().unwrap().right);
        let dataset = datagen::generate(&cat, &q, 40, seed);
        let memory = presets::spread_family(300.0, 0.6, 4).unwrap();
        let opt = Optimizer::new(&cat, memory);
        let r = opt.optimize(&q, &Mode::AlgorithmC).unwrap();
        let rel = execute(&r.plan, &q, &dataset);
        // Resolve the key through the relation (any class member works).
        let want = q.required_order.unwrap();
        let eq = lec_qopt::plan::ColumnEquivalences::for_query(&q);
        let key = q
            .joins
            .iter()
            .flat_map(|p| [p.left, p.right])
            .chain([want])
            .find(|c| eq.same_class(*c, want))
            .unwrap();
        let idx = rel.col_index(key);
        assert!(
            rel.rows.windows(2).all(|w| w[0][idx] <= w[1][idx]),
            "seed {seed}: output not sorted"
        );
    }
}

#[test]
fn monte_carlo_agrees_with_analytic_expected_cost() {
    for seed in [21u64, 22] {
        let (cat, q) = workload(seed, 4, Topology::Chain);
        let memory = presets::spread_family(350.0, 0.9, 4).unwrap();
        let model = CostModel::new(&cat, &q);
        let opt = Optimizer::new(&cat, memory.clone());
        let r = opt.optimize(&q, &Mode::Lsc(PointEstimate::Mean)).unwrap();
        let analytic = lec_qopt::cost::expected_plan_cost_static(&model, &r.plan, &memory);
        let env = Environment::Static(memory);
        let sim = monte_carlo(&model, &r.plan, &env, 60_000, seed).unwrap();
        let rel = (sim.mean - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "seed {seed}: sim {} vs analytic {analytic}",
            sim.mean
        );
    }
}

#[test]
fn lec_improvement_survives_measurement() {
    // On workloads where LEC and LSC disagree, the simulated average must
    // favor LEC (it can never favor LSC, by optimality of the objective).
    let mut disagreements = 0;
    for seed in 0..20u64 {
        let (cat, q) = workload(seed + 31, 4, Topology::Chain);
        let memory = presets::spread_family(250.0, 0.9, 6).unwrap();
        let model = CostModel::new(&cat, &q);
        let opt = Optimizer::new(&cat, memory.clone());
        let lsc = opt.optimize(&q, &Mode::Lsc(PointEstimate::Mean)).unwrap();
        let lec = opt.optimize(&q, &Mode::AlgorithmC).unwrap();
        if lsc.plan == lec.plan {
            continue;
        }
        disagreements += 1;
        let env = Environment::Static(memory);
        let s_lsc = monte_carlo(&model, &lsc.plan, &env, 20_000, seed).unwrap();
        let s_lec = monte_carlo(&model, &lec.plan, &env, 20_000, seed).unwrap();
        assert!(
            s_lec.mean <= s_lsc.mean * 1.01,
            "seed {seed}: LEC measured {} vs LSC {}",
            s_lec.mean,
            s_lsc.mean
        );
    }
    assert!(
        disagreements >= 2,
        "expected several LSC/LEC disagreements, got {disagreements}"
    );
}
