//! End-to-end physical fidelity: the Example 1.1 *crossover structure*
//! reproduced on real external-memory operators, not just on the cost
//! model.  This is the strongest form of E11: whole plans, measured I/O.

use lec_qopt::exec::{external_sort, grace_hash_join, sort_merge_join, DiskTable};
use rand::{Rng, SeedableRng};

const PAGE_CAP: usize = 4;

/// Example-1.1-shaped inputs scaled to test size: |A| = 128 pages,
/// |B| = 32 pages, shared join-key domain so the result is small.
fn inputs() -> (DiskTable, DiskTable) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1797);
    let a = DiskTable::from_rows(
        (0..512).map(|i| vec![rng.gen_range(0..4096i64), i as i64]),
        PAGE_CAP,
    );
    let b = DiskTable::from_rows(
        (0..128).map(|i| vec![rng.gen_range(0..4096i64), i as i64]),
        PAGE_CAP,
    );
    (a, b)
}

/// Physical "Plan 1": sort-merge join; output already ordered on the key.
fn plan1_io(a: &DiskTable, b: &DiskTable, m: usize) -> (u64, Vec<Vec<i64>>) {
    let r = sort_merge_join(a, b, 0, 0, m, PAGE_CAP);
    (r.io, r.rows)
}

/// Physical "Plan 2": Grace hash join, then an external sort of the
/// (small) result to satisfy the order requirement.
fn plan2_io(a: &DiskTable, b: &DiskTable, m: usize) -> (u64, Vec<Vec<i64>>) {
    let join = grace_hash_join(a, b, 0, 0, m, PAGE_CAP);
    let result = DiskTable::from_rows(join.rows, PAGE_CAP);
    let sort = external_sort(&result, 0, m, PAGE_CAP);
    // The join's pipelined output must be materialized for the blocking
    // sort; charge its write like the model's sort input accounting.
    (join.io + result.n_pages() as u64 + sort.io, sort.rows)
}

#[test]
fn example_1_1_crossover_on_real_operators() {
    let (a, b) = inputs();
    // √|A| ≈ 11.3 is the sort-merge cliff; √|B| ≈ 5.7 the Grace cliff.
    // Above both cliffs: Plan 1 avoids the extra sort and wins.
    let (p1_hi, _) = plan1_io(&a, &b, 16);
    let (p2_hi, _) = plan2_io(&a, &b, 16);
    assert!(
        p1_hi < p2_hi,
        "with ample memory the sort-free plan must win: {p1_hi} vs {p2_hi}"
    );
    // Between the cliffs (8 ∈ (5.7, 11.3)): sort-merge needs an extra
    // pass over 160 pages, the hash plan only re-sorts the tiny result.
    let (p1_lo, _) = plan1_io(&a, &b, 8);
    let (p2_lo, _) = plan2_io(&a, &b, 8);
    assert!(
        p2_lo < p1_lo,
        "below the SM cliff the hash plan must win: {p2_lo} vs {p1_lo}"
    );
    // The crossover is exactly the paper's: which plan is cheaper depends
    // on which side of the memory cliff the run lands on.
}

#[test]
fn both_physical_plans_compute_the_same_ordered_result() {
    let (a, b) = inputs();
    for m in [6usize, 10, 20, 60] {
        let (_, rows1) = plan1_io(&a, &b, m);
        let (_, mut rows2) = plan2_io(&a, &b, m);
        let mut rows1 = rows1;
        // Both are ordered on the join key; full row order may differ for
        // equal keys, so compare as multisets and check key order.
        assert!(rows1.windows(2).all(|w| w[0][0] <= w[1][0]), "m={m}");
        assert!(rows2.windows(2).all(|w| w[0][0] <= w[1][0]), "m={m}");
        rows1.sort();
        rows2.sort();
        assert_eq!(rows1, rows2, "m={m}");
    }
}

#[test]
fn expected_physical_io_favors_plan2_under_the_papers_distribution() {
    // The full LEC argument on hardware-measured numbers: with memory
    // 16 pages 80% of the time and 8 pages 20% of the time (scaled
    // Example 1.1), Plan 2's expected measured I/O is lower even though
    // Plan 1 wins in the common case.
    let (a, b) = inputs();
    let (p1_hi, _) = plan1_io(&a, &b, 16);
    let (p1_lo, _) = plan1_io(&a, &b, 8);
    let (p2_hi, _) = plan2_io(&a, &b, 16);
    let (p2_lo, _) = plan2_io(&a, &b, 8);
    let ec1 = 0.8 * p1_hi as f64 + 0.2 * p1_lo as f64;
    let ec2 = 0.8 * p2_hi as f64 + 0.2 * p2_lo as f64;
    assert!(p1_hi < p2_hi, "Plan 1 wins the common case");
    assert!(
        ec2 < ec1,
        "but Plan 2 wins in expectation: EC1 {ec1} vs EC2 {ec2}"
    );
}
