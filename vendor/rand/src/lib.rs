//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate.  The generator is
//! xoshiro256++ seeded through SplitMix64 — not the real `StdRng` stream,
//! but every consumer in this workspace only relies on *per-seed
//! determinism*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "natural" range
/// (`[0, 1)` for floats, fair coin for `bool`) — the shim's analogue of
/// sampling from rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` — the shim's
/// `SampleUniform`.  A single blanket [`SampleRange`] impl per range shape
/// keeps integer-literal type inference working exactly as with the real
/// crate (`gen_range(0..4)` used as a slice index infers `usize`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range that a value can be drawn from — the shim's `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`[0, 1)` floats,
    /// fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.  Only the `seed_from_u64` entry point of the
/// real trait is provided — it is the only one the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_and_unsigned_standard_draws() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "fair-ish coin: {trues}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let through_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&through_ref));
    }
}
