//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate.  Measurement is
//! deliberately simple — a short warm-up, then a timed batch sized to a
//! small per-benchmark budget — and each result prints one line:
//!
//! ```text
//! bench  group/name ... <median per-iter time>
//! ```
//!
//! Passing `--bench` (as `cargo bench` does) is accepted and ignored, and
//! `--quick` shrinks the measurement budget.

use std::time::{Duration, Instant};

/// Re-exported for convenience (real criterion also exposes one).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion {
            budget: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.budget, name, f);
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_*` methods (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion.budget, &full, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, J, F>(&mut self, id: I, input: &J, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &J),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion.budget, &full, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`, called repeatedly until the time budget is exhausted.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and batch-size calibration: run until ~1/10 budget.
        let calibrate_until = self.budget / 10;
        let start = Instant::now();
        let mut calibration_iters: u32 = 0;
        while start.elapsed() < calibrate_until || calibration_iters == 0 {
            black_box(f());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed() / calibration_iters;
        let batch =
            (calibrate_until.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / batch);
            if self.samples.len() >= 64 {
                break;
            }
        }
    }
}

fn run_one<F>(budget: Duration, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        budget,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench  {name} ... (no measurement — closure never called iter)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("bench  {name} ... {}", fmt_duration(median));
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.2} us/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.2} s/iter", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one named runner, as real criterion
/// does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn groups_and_ids_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("plain", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn bench_function_on_criterion_runs() {
        let mut c = quick();
        let mut hits = 0u64;
        c.bench_function("top", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        assert!(hits > 0);
    }
}
