//! Offline stand-in for the subset of the `serde_json` API this workspace
//! uses: the [`Value`] tree, the [`json!`] macro (object/array/expression
//! forms) and [`to_string_pretty`].
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate.  Objects keep
//! insertion order (like serde_json's `preserve_order` feature), numbers
//! are stored as `f64`, and serialization escapes the JSON control set.

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values print without a
    /// fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The same value with every object's keys recursively sorted
    /// (stable, lexicographic).  Producers of metrics snapshots call this
    /// so output diffs cleanly across runs regardless of the insertion
    /// order at each call site.
    pub fn sorted(self) -> Value {
        match self {
            Value::Object(pairs) => {
                let mut pairs: Vec<(String, Value)> =
                    pairs.into_iter().map(|(k, v)| (k, v.sorted())).collect();
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(pairs)
            }
            Value::Array(items) => Value::Array(items.into_iter().map(Value::sorted).collect()),
            v => v,
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

from_number!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<&&str> for Value {
    fn from(s: &&str) -> Value {
        Value::String((*s).to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // serde_json refuses; the shim degrades gracefully
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if !pretty {
                        out.push(' ');
                    }
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if !pretty {
                        out.push(' ');
                    }
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

/// Serialization error type (the shim's serializer cannot actually fail).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim's [`Value`] tree — the stand-in for
/// serde's `Serialize` trait.  Types implement it directly (usually by
/// assembling a [`json!`] object); `Value` itself, primitives, strings,
/// options, slices, and vectors come for free, so `to_string` /
/// `to_string_pretty` accept both plain values and domain types.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! serialize_via_from {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

serialize_via_from!(bool, f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::from(self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::from(self.as_str())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact serialization.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Two-space-indented serialization.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal with interpolated Rust
/// expressions (any `Into<Value>` type) in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::__json_pairs!(object; $($tt)+);
        $crate::Value::Object(object)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_items!(array; $($tt)+);
        $crate::Value::Array(array)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_pairs {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::__json_pairs!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::__json_pairs!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::__json_pairs!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::from($value)));
        $crate::__json_pairs!($obj; $($($rest)*)?);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_items {
    ($arr:ident;) => {};
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::__json_items!($arr; $($($rest)*)?);
    };
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::__json_items!($arr; $($($rest)*)?);
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::__json_items!($arr; $($($rest)*)?);
    };
    ($arr:ident; $value:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::from($value));
        $crate::__json_items!($arr; $($($rest)*)?);
    };
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)] // json! expands to create-then-push by design
mod tests {
    use super::*;

    #[test]
    fn object_macro_preserves_order_and_nests() {
        let rows = vec![json!({"x": 1}), json!({"x": 2})];
        let v = json!({
            "experiment": "e1",
            "count": 2usize,
            "ratio": 1.5,
            "nested": {"a": 1, "b": [1, 2, 3], "c": null},
            "rows": rows,
            "ok": true,
        });
        assert_eq!(v["experiment"], "e1");
        assert_eq!(v["count"].as_f64(), Some(2.0));
        assert_eq!(v["nested"]["b"][2].as_f64(), Some(3.0));
        assert_eq!(v["nested"]["c"], Value::Null);
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn exprs_with_internal_commas_are_one_value() {
        fn pair(a: u64, b: u64) -> u64 {
            a + b
        }
        let v = json!({"sum": pair(1, 2), "next": 4});
        assert_eq!(v["sum"].as_f64(), Some(3.0));
        assert_eq!(v["next"].as_f64(), Some(4.0));
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"a": 1, "b": [true, "x\n"]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\\n"));
        assert!(s.starts_with('{') && s.ends_with('}'));
        // Integral floats print without a fractional part.
        assert!(!s.contains("1.0"));
        let compact = to_string(&v).unwrap();
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn serialize_trait_covers_primitives_and_domain_types() {
        struct Point {
            x: f64,
            y: f64,
        }
        impl Serialize for Point {
            fn to_value(&self) -> Value {
                json!({"x": self.x, "y": self.y})
            }
        }
        let p = Point { x: 1.5, y: -2.0 };
        assert_eq!(to_string(&p).unwrap(), r#"{"x": 1.5, "y": -2}"#);
        assert_eq!(to_value(&vec![1u64, 2, 3])[2].as_f64(), Some(3.0));
        assert_eq!(to_value("abc"), Value::String("abc".into()));
        assert_eq!(to_value(&Option::<u64>::None), Value::Null);
        assert_eq!(to_value(&Some(4u64)).as_f64(), Some(4.0));
        // Values still pass through unchanged, so existing callers keep
        // working.
        let v = json!({"k": [1, 2]});
        assert!(to_string_pretty(&v).unwrap().contains("\"k\""));
    }

    #[test]
    fn sorted_orders_keys_recursively() {
        let v = json!({
            "zeta": {"b": 1, "a": {"d": 4, "c": 3}},
            "alpha": [{"y": 2, "x": 1}],
            "mid": 7,
        })
        .sorted();
        let Value::Object(pairs) = &v else {
            panic!("expected object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
        let Value::Object(inner) = &v["zeta"]["a"] else {
            panic!("expected nested object")
        };
        assert_eq!(inner[0].0, "c");
        // Scalars and lookups are unchanged by sorting.
        assert_eq!(v["zeta"]["a"]["d"].as_f64(), Some(4.0));
        assert_eq!(v["alpha"][0]["x"].as_f64(), Some(1.0));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(json!(2.5).to_string(), "2.5");
        assert_eq!(json!(3.0).to_string(), "3");
        assert_eq!(json!(-7i64).to_string(), "-7");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }
}
