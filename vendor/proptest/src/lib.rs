//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` test macro, range/tuple/`Just`/`prop_oneof!`/
//! `prop::collection::vec` strategies, `prop_map`, `any::<bool>()`, the
//! `prop_assert*` macros and `ProptestConfig::with_cases`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate.  Differences
//! from real proptest, none of which the workspace's tests rely on:
//!
//! * no shrinking — a failing case reports its inputs (via `Debug` where
//!   available in the assertion message) and the case number, but is not
//!   minimized;
//! * generation is deterministic per test *name* (seeded from a hash of
//!   the name), so failures reproduce across runs without a persistence
//!   file.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` inside `proptest!` runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this workspace's properties are
        // exercised heavily elsewhere, so a leaner default keeps `cargo
        // test` fast without giving up coverage of the value space.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The deterministic RNG handed to strategies by the `proptest!` macro.
pub type TestRng = StdRng;

/// Seed a [`TestRng`] from a test name (FNV-1a over the bytes).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Uniform choice among same-typed alternatives (the `prop_oneof!` macro).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A strategy that picks one of `options` uniformly per case.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (the `any::<T>()` entry
/// point).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace of real proptest (only `collection` is provided).
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Assert a condition inside a `proptest!` body, failing the current case
/// (with its inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// The test-harness macro: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(pairs in prop::collection::vec((1.0f64..2.0, 0usize..5), 2..6)) {
            prop_assert!((2..6).contains(&pairs.len()));
            for (f, u) in pairs {
                prop_assert!((1.0..2.0).contains(&f));
                prop_assert!(u < 5);
            }
        }

        #[test]
        fn oneof_and_any(choice in prop_oneof![Just(1u8), Just(2), Just(3)], flag in any::<bool>()) {
            prop_assert!((1..=3).contains(&choice));
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
